//! Deterministic, seeded network impairment for the real-UDP runtime.
//!
//! The DES injects loss/delay/jitter through [`simnet`]; the real
//! runtime historically ran on pristine loopback, so the paper's
//! robustness story (fig. 9/10: the offload path *is* the failure
//! surface) only existed in simulation. This shim closes the gap
//! without `tc netem` or root: every service/client socket is wrapped
//! in an [`RtSocket`], and each *send* consults a per-link
//! [`LinkState`] that draws drop/duplication decisions from a seeded
//! [`SimRng`] (optionally through the same Gilbert–Elliott burst
//! channel the DES uses, [`simnet::GilbertElliott`]) and ships delayed
//! datagrams through a single delay-line thread.
//!
//! Determinism: decisions are drawn per datagram in send order from a
//! per-link RNG seeded by `profile.seed ^ hash(link)`. Because every
//! service is a single thread, the send order on a given link is the
//! frame order, so a fixed seed yields a fixed loss pattern
//! independent of wall-clock timing. (Delays are *applied* in real
//! time, so arrival interleavings still vary — exactly like a real
//! impaired network, while the loss schedule stays reproducible.)
//!
//! Attribution: the shim is the network, so when it eats *every*
//! fragment of a frame message the receiver can never know — the
//! sender's service loop records the drop ([`trace::DropReason::NetemLoss`]
//! or `FragmentLoss`) at the send site, mirroring where the DES
//! attributes `simnet::Delivery::Lost`. Partial fragment loss is
//! attributed at the receiver when the reassembler gives up
//! ([`crate::runtime::wire::Reassembler::sweep`]).

use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use simcore::SimRng;
use simnet::GilbertElliott;

use crate::message::ServiceKind;
use crate::runtime::batch::{self, RecvBatch};

/// One endpoint class of a runtime link. All clients share a class:
/// impairment profiles describe *links*, not individual phones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ep {
    Client,
    Svc(ServiceKind),
}

impl Ep {
    fn hash64(self) -> u64 {
        match self {
            Ep::Client => 0x00C1_1E57,
            Ep::Svc(k) => 0x5E8C_0000 + k.index() as u64,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Ep::Client => "client",
            Ep::Svc(k) => k.name(),
        }
    }
}

/// What one link does to datagrams, per direction.
#[derive(Debug, Clone, Default)]
pub struct LinkImpairment {
    /// Independent per-datagram loss probability.
    pub loss: f64,
    /// Bursty loss: `(average loss, mean burst length in datagrams)`,
    /// realized by the DES's Gilbert–Elliott channel. Composes with
    /// `loss` (either may eat the datagram).
    pub burst: Option<(f64, f64)>,
    /// Fixed one-way extra delay.
    pub delay: Duration,
    /// Uniform extra jitter on top of `delay`.
    pub jitter: Duration,
    /// Per-datagram duplication probability.
    pub duplicate: f64,
    /// Deterministically drop the first `n` datagrams on this link —
    /// the knob fault-injection tests use to force e.g. "the first
    /// fetch-request datagram is lost".
    pub drop_first: u64,
    /// Deterministically corrupt (bit-flip) the first `n` datagrams on
    /// this link instead of dropping them. The datagram still ships —
    /// the point is to exercise the receive path: a v2 receiver counts
    /// `InvalidCrc` and drops; a v1 receiver silently accepts the
    /// garbage. Checked after `drop_first`, before any RNG draw, so the
    /// count is exact and the loss schedule is unchanged.
    pub corrupt_first: u64,
    /// Radio-cell MTU: when set, the loss draws (`loss` and `burst`)
    /// are made once per `ceil(len / cell_mtu)` cell rather than once
    /// per datagram, and the datagram dies if *any* cell dies. This is
    /// the LTE reality that makes byte count matter: a frame twice as
    /// long crosses twice as many cells and is roughly twice as likely
    /// to be eaten, which is what rewards v2's smaller frames with
    /// higher goodput, not just fewer bytes.
    pub cell_mtu: Option<usize>,
}

impl LinkImpairment {
    pub fn loss(p: f64) -> Self {
        LinkImpairment {
            loss: p,
            ..Default::default()
        }
    }

    pub fn bursty(avg_loss: f64, mean_burst: f64) -> Self {
        LinkImpairment {
            burst: Some((avg_loss, mean_burst)),
            ..Default::default()
        }
    }

    pub fn drop_first(n: u64) -> Self {
        LinkImpairment {
            drop_first: n,
            ..Default::default()
        }
    }

    pub fn corrupt_first(n: u64) -> Self {
        LinkImpairment {
            corrupt_first: n,
            ..Default::default()
        }
    }

    pub fn with_cell_mtu(mut self, mtu: usize) -> Self {
        assert!(mtu > 0, "cell MTU must be positive");
        self.cell_mtu = Some(mtu);
        self
    }

    pub fn with_delay(mut self, delay: Duration, jitter: Duration) -> Self {
        self.delay = delay;
        self.jitter = jitter;
        self
    }

    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    fn needs_delay_line(&self) -> bool {
        self.delay > Duration::ZERO || self.jitter > Duration::ZERO
    }
}

/// A rule: which links (`from` → `to`, `None` = wildcard) get which
/// impairment. First matching rule wins.
#[derive(Debug, Clone)]
pub struct LinkRule {
    pub from: Option<Ep>,
    pub to: Option<Ep>,
    pub imp: LinkImpairment,
}

impl LinkRule {
    pub fn between(from: Ep, to: Ep, imp: LinkImpairment) -> Self {
        LinkRule {
            from: Some(from),
            to: Some(to),
            imp,
        }
    }

    pub fn any(imp: LinkImpairment) -> Self {
        LinkRule {
            from: None,
            to: None,
            imp,
        }
    }

    fn matches(&self, from: Ep, to: Ep) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// A full impairment profile: the seed plus the link rules.
#[derive(Debug, Clone)]
pub struct ImpairmentProfile {
    pub seed: u64,
    pub rules: Vec<LinkRule>,
}

impl ImpairmentProfile {
    pub fn new(seed: u64) -> Self {
        ImpairmentProfile {
            seed,
            rules: Vec::new(),
        }
    }

    pub fn with_rule(mut self, rule: LinkRule) -> Self {
        self.rules.push(rule);
        self
    }
}

/// Per-link mutable state: the seeded RNG, the optional burst channel,
/// and the datagram counter for `drop_first`.
struct LinkState {
    imp: LinkImpairment,
    rng: SimRng,
    gilbert: Option<GilbertElliott>,
    sent: u64,
}

/// What the shim decided about one datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Caller sends it now.
    Pass,
    /// Caller sends it now *and* the delay line ships a duplicate.
    PassAndDuplicate,
    /// Caller flips a byte and then sends it: the emulated network
    /// corrupted the datagram in flight (see
    /// [`LinkImpairment::corrupt_first`]).
    PassCorrupted,
    /// Queued on the delay line; the caller must not send it.
    Delayed,
    /// Eaten by the emulated network; the caller must not send it.
    Dropped,
}

struct DelayedDatagram {
    due: Instant,
    to: SocketAddr,
    bytes: Vec<u8>,
    seq: u64,
}

impl PartialEq for DelayedDatagram {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for DelayedDatagram {}
impl PartialOrd for DelayedDatagram {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedDatagram {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by due time (BinaryHeap is a max-heap).
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

/// Where the shim's *own* send failures are reported: the counter the
/// deployment reads into `RuntimeReport::delay_send_errors`, plus a
/// flight-recorder hook attached after the deployment builds one (the
/// delay thread outlives no deployment, but is spawned before it).
/// Historically these sends were `let _ =`-discarded, making a
/// transient ENOBUFS on the shim indistinguishable from an intentional
/// shim drop.
/// A flight recorder plus the deployment epoch its timestamps count
/// from.
type FlightHook = (Arc<observatory::FlightRecorder>, Instant);

#[derive(Clone, Default)]
struct SendErrSink {
    errors: Arc<AtomicU64>,
    flight: Arc<Mutex<Option<FlightHook>>>,
}

impl SendErrSink {
    fn note(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        if let Some((flight, epoch)) = &*self.flight.lock().expect("flight lock") {
            flight.record(
                0,
                epoch.elapsed().as_nanos() as u64,
                observatory::flight::KIND_SEND_ERR,
                0,
                0,
            );
        }
    }
}

/// The shared impairment plane for one deployment.
pub struct ImpairedNet {
    profile: ImpairmentProfile,
    /// Destination port → endpoint class; unknown ports are clients
    /// (their sockets are bound dynamically).
    ports: Mutex<HashMap<u16, Ep>>,
    links: Mutex<HashMap<(Ep, Ep), LinkState>>,
    delay_tx: Option<mpsc::Sender<DelayedDatagram>>,
    seq: std::sync::atomic::AtomicU64,
    /// OS-level failures of the shim's own sends (delay line + the
    /// synchronous duplicate path).
    send_errs: SendErrSink,
}

impl ImpairedNet {
    pub fn new(profile: ImpairmentProfile) -> Arc<ImpairedNet> {
        let send_errs = SendErrSink::default();
        let delay_tx = if profile.rules.iter().any(|r| r.imp.needs_delay_line()) {
            let (tx, rx) = mpsc::channel::<DelayedDatagram>();
            let sink = send_errs.clone();
            std::thread::Builder::new()
                .name("scatter-delay-line".into())
                .spawn(move || delay_line(rx, sink))
                .expect("spawn delay-line thread");
            Some(tx)
        } else {
            None
        };
        Arc::new(ImpairedNet {
            profile,
            ports: Mutex::new(HashMap::new()),
            links: Mutex::new(HashMap::new()),
            delay_tx,
            seq: std::sync::atomic::AtomicU64::new(0),
            send_errs,
        })
    }

    /// Route shim send failures into the deployment's flight recorder
    /// (ring 0, [`observatory::flight::KIND_SEND_ERR`]). Idempotent;
    /// the delay thread picks the hook up on its next error.
    pub fn attach_flight(&self, flight: Arc<observatory::FlightRecorder>, epoch: Instant) {
        *self.send_errs.flight.lock().expect("flight lock") = Some((flight, epoch));
    }

    /// OS send failures on the shim's own datagrams (delay line +
    /// synchronous duplicates) since construction.
    pub fn delay_send_errors(&self) -> u64 {
        self.send_errs.errors.load(Ordering::Relaxed)
    }

    /// Register a service's port so sends toward it resolve to the
    /// right link class.
    pub fn register_port(&self, port: u16, ep: Ep) {
        self.ports.lock().expect("ports lock").insert(port, ep);
    }

    fn classify(&self, port: u16) -> Ep {
        self.ports
            .lock()
            .expect("ports lock")
            .get(&port)
            .copied()
            .unwrap_or(Ep::Client)
    }

    /// Decide the fate of one datagram from `from` to `to`. When the
    /// verdict is [`Verdict::Delayed`], the delay line owns shipping it.
    pub fn admit(&self, from: Ep, to: SocketAddr, datagram: &[u8]) -> Verdict {
        let to_ep = self.classify(to.port());
        let Some(rule) = self
            .profile
            .rules
            .iter()
            .find(|r| r.matches(from, to_ep))
            .map(|r| r.imp.clone())
        else {
            return Verdict::Pass;
        };
        let mut links = self.links.lock().expect("links lock");
        let state = links.entry((from, to_ep)).or_insert_with(|| {
            let seed = self
                .profile
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(from.hash64().wrapping_mul(0x1000_0001))
                .wrapping_add(to_ep.hash64());
            LinkState {
                gilbert: rule
                    .burst
                    .map(|(avg, burst)| GilbertElliott::with_average_loss(avg, burst)),
                imp: rule,
                rng: SimRng::new(seed),
                sent: 0,
            }
        });
        let idx = state.sent;
        state.sent += 1;
        if idx < state.imp.drop_first {
            return Verdict::Dropped;
        }
        if idx < state.imp.drop_first + state.imp.corrupt_first {
            return Verdict::PassCorrupted;
        }
        // Draw order is fixed (burst, loss, duplicate, delay) so the
        // decision stream is a pure function of the link's send index
        // (and, under `cell_mtu`, the datagram lengths).
        let cells = match state.imp.cell_mtu {
            Some(mtu) => datagram.len().div_ceil(mtu).max(1),
            None => 1,
        };
        let mut lost = false;
        for _ in 0..cells {
            let burst_lost = match state.gilbert.as_mut() {
                Some(ge) => ge.lose_packet(&mut state.rng),
                None => false,
            };
            let iid_lost = state.imp.loss > 0.0 && state.rng.bernoulli(state.imp.loss);
            // No early exit: every cell advances the channel state so
            // the schedule stays well-defined regardless of outcome.
            lost |= burst_lost || iid_lost;
        }
        if lost {
            return Verdict::Dropped;
        }
        let duplicated = state.imp.duplicate > 0.0 && state.rng.bernoulli(state.imp.duplicate);
        let delay = if state.imp.needs_delay_line() {
            let jitter_s = if state.imp.jitter > Duration::ZERO {
                state.rng.uniform(0.0, state.imp.jitter.as_secs_f64())
            } else {
                0.0
            };
            Some(state.imp.delay + Duration::from_secs_f64(jitter_s))
        } else {
            None
        };
        drop(links);
        match (delay, duplicated) {
            (None, false) => Verdict::Pass,
            (None, true) => {
                // Duplicate ships immediately through the delay line when
                // one exists; otherwise RtSocket::send_to sends twice.
                let _ = self.push_delayed(Duration::ZERO, to, datagram);
                Verdict::PassAndDuplicate
            }
            (Some(d), dup) => {
                self.push_delayed(d, to, datagram);
                if dup {
                    self.push_delayed(d, to, datagram);
                }
                Verdict::Delayed
            }
        }
    }

    fn push_delayed(&self, after: Duration, to: SocketAddr, datagram: &[u8]) -> bool {
        let Some(tx) = &self.delay_tx else {
            return false;
        };
        let seq = self.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        tx.send(DelayedDatagram {
            due: Instant::now() + after,
            to,
            bytes: datagram.to_vec(),
            seq,
        })
        .is_ok()
    }
}

/// The delay-line thread: a time-ordered heap of queued datagrams,
/// shipped from its own socket when due. Exits when every sender side
/// of the channel is gone (deployment shutdown).
fn delay_line(rx: mpsc::Receiver<DelayedDatagram>, errs: SendErrSink) {
    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind delay-line socket");
    let mut heap: BinaryHeap<DelayedDatagram> = BinaryHeap::new();
    loop {
        let now = Instant::now();
        while let Some(head) = heap.peek() {
            if head.due > now {
                break;
            }
            let d = heap.pop().expect("peeked");
            if socket.send_to(&d.bytes, d.to).is_err() {
                errs.note();
            }
        }
        let wait = heap
            .peek()
            .map(|h| h.due.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(wait.min(Duration::from_millis(50))) {
            Ok(d) => heap.push(d),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Flush what is already due, then stop.
                let now = Instant::now();
                while let Some(head) = heap.peek() {
                    if head.due > now {
                        break;
                    }
                    let d = heap.pop().expect("peeked");
                    if socket.send_to(&d.bytes, d.to).is_err() {
                        errs.note();
                    }
                }
                return;
            }
        }
    }
}

/// How a send through the shim ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendDisposition {
    /// Handed to the OS (or the delay line) for delivery.
    Sent,
    /// Eaten by the emulated network.
    ShimDropped,
    /// The OS send itself failed.
    Error,
}

/// A runtime socket: the real `UdpSocket` plus this deployment's
/// impairment plane (when configured) and the owner's endpoint class.
/// Receives are pass-through — loss happens on the send side, which is
/// equivalent on loopback and keeps attribution at one site.
#[derive(Clone)]
pub struct RtSocket {
    sock: Arc<UdpSocket>,
    ep: Ep,
    net: Option<Arc<ImpairedNet>>,
    /// Syscall batching (`recvmmsg`/`sendmmsg` via [`batch`]); off =
    /// bit-compatible single-datagram I/O.
    batched: bool,
}

impl RtSocket {
    pub fn new(sock: Arc<UdpSocket>, ep: Ep, net: Option<Arc<ImpairedNet>>) -> RtSocket {
        RtSocket {
            sock,
            ep,
            net,
            batched: false,
        }
    }

    /// An unimpaired socket (tests, default wiring).
    pub fn plain(sock: UdpSocket, ep: Ep) -> RtSocket {
        RtSocket {
            sock: Arc::new(sock),
            ep,
            net: None,
            batched: false,
        }
    }

    /// Enable syscall batching on this socket's receive and send paths.
    pub fn with_batch(mut self, on: bool) -> RtSocket {
        self.batched = on;
        self
    }

    pub fn batched(&self) -> bool {
        self.batched
    }

    /// Drain up to one batch of datagrams in a single wakeup (the batch
    /// itself carries the single-vs-batched mode; see
    /// [`RecvBatch::recv`]).
    pub fn recv_batch(&self, batch: &mut RecvBatch) -> std::io::Result<usize> {
        batch.recv(&self.sock)
    }

    pub fn endpoint(&self) -> Ep {
        self.ep
    }

    pub fn inner(&self) -> &UdpSocket {
        &self.sock
    }

    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.sock.local_addr()
    }

    pub fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        self.sock.set_read_timeout(d)
    }

    pub fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        self.sock.set_nonblocking(on)
    }

    pub fn recv_from(&self, buf: &mut [u8]) -> std::io::Result<(usize, SocketAddr)> {
        self.sock.recv_from(buf)
    }

    /// Send one datagram through the impairment plane.
    pub fn send_to(&self, datagram: &[u8], to: SocketAddr) -> SendDisposition {
        let verdict = match &self.net {
            Some(net) => net.admit(self.ep, to, datagram),
            None => Verdict::Pass,
        };
        self.dispatch(verdict, datagram, to)
    }

    /// Execute a verdict the shim already rendered for this datagram.
    fn dispatch(&self, verdict: Verdict, datagram: &[u8], to: SocketAddr) -> SendDisposition {
        match verdict {
            Verdict::Dropped => SendDisposition::ShimDropped,
            Verdict::Delayed => SendDisposition::Sent,
            Verdict::Pass => match self.sock.send_to(datagram, to) {
                Ok(_) => SendDisposition::Sent,
                Err(_) => SendDisposition::Error,
            },
            Verdict::PassCorrupted => {
                // Flip one payload-end byte: past every header, so a v1
                // receiver accepts the damage silently while a v2
                // receiver's CRC catches it — the contrast the wire
                // experiment gates on.
                let mut mangled = datagram.to_vec();
                if let Some(last) = mangled.last_mut() {
                    *last ^= 0xFF;
                }
                match self.sock.send_to(&mangled, to) {
                    Ok(_) => SendDisposition::Sent,
                    Err(_) => SendDisposition::Error,
                }
            }
            Verdict::PassAndDuplicate => {
                let first = self.sock.send_to(datagram, to);
                if let Some(net) = self.net.as_ref().filter(|n| n.delay_tx.is_none()) {
                    // No delay line: ship the duplicate synchronously.
                    // The duplicate is the *shim's* datagram — its OS
                    // failure is the shim's to count, not the caller's.
                    if self.sock.send_to(datagram, to).is_err() {
                        net.send_errs.note();
                    }
                }
                match first {
                    Ok(_) => SendDisposition::Sent,
                    Err(_) => SendDisposition::Error,
                }
            }
        }
    }

    /// Ship a message's fragments in one call, preserving the shim's
    /// per-datagram verdict stream (decisions are drawn in datagram
    /// order, exactly as the sequential loop would). Runs of consecutive
    /// `Pass` verdicts go to the wire through one `sendmmsg` when
    /// batching is on; every other verdict is executed in place so
    /// chaos/wire schedules hold bit-for-bit.
    pub fn send_many(&self, datagrams: &[Bytes], to: SocketAddr) -> BatchSendReport {
        let mut rep = BatchSendReport::default();
        if !self.batched || datagrams.len() <= 1 {
            for d in datagrams {
                rep.count(self.send_to(d, to));
            }
            return rep;
        }
        let mut run: Vec<&[u8]> = Vec::with_capacity(datagrams.len());
        for d in datagrams {
            let verdict = match &self.net {
                Some(net) => net.admit(self.ep, to, d),
                None => Verdict::Pass,
            };
            if verdict == Verdict::Pass {
                run.push(d);
                continue;
            }
            // A non-Pass verdict breaks the run: flush what queued up
            // (order on the wire = offer order), then execute it.
            rep.errors += flush_run(&self.sock, &mut run, to);
            rep.count(self.dispatch(verdict, d, to));
        }
        rep.errors += flush_run(&self.sock, &mut run, to);
        rep
    }
}

/// Per-datagram accounting from [`RtSocket::send_many`] — the same three
/// outcomes `send_to` reports, aggregated over one message's fragments.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BatchSendReport {
    pub shim_dropped: usize,
    pub errors: usize,
}

impl BatchSendReport {
    fn count(&mut self, d: SendDisposition) {
        match d {
            SendDisposition::Sent => {}
            SendDisposition::ShimDropped => self.shim_dropped += 1,
            SendDisposition::Error => self.errors += 1,
        }
    }
}

/// Ship a run of already-admitted datagrams through one `sendmmsg` (or
/// the sequential fallback); returns the per-datagram error count.
fn flush_run(sock: &UdpSocket, run: &mut Vec<&[u8]>, to: SocketAddr) -> usize {
    if run.is_empty() {
        return 0;
    }
    let errors = batch::send_many(sock, run, to);
    run.clear();
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        SocketAddr::from(([127, 0, 0, 1], port))
    }

    fn decisions(net: &ImpairedNet, n: usize) -> Vec<Verdict> {
        (0..n)
            .map(|_| net.admit(Ep::Client, addr(9000), b"x"))
            .collect()
    }

    #[test]
    fn same_seed_same_loss_schedule() {
        let profile =
            ImpairmentProfile::new(42).with_rule(LinkRule::any(LinkImpairment::loss(0.3)));
        let a = ImpairedNet::new(profile.clone());
        let b = ImpairedNet::new(profile);
        assert_eq!(decisions(&a, 500), decisions(&b, 500));
        assert!(decisions(&a, 500).contains(&Verdict::Dropped));
    }

    #[test]
    fn different_links_draw_independent_schedules() {
        let profile = ImpairmentProfile::new(7).with_rule(LinkRule::any(LinkImpairment::loss(0.5)));
        let net = ImpairedNet::new(profile);
        net.register_port(9001, Ep::Svc(ServiceKind::Sift));
        let a: Vec<Verdict> = (0..200)
            .map(|_| net.admit(Ep::Client, addr(9000), b"x"))
            .collect();
        let b: Vec<Verdict> = (0..200)
            .map(|_| net.admit(Ep::Svc(ServiceKind::Primary), addr(9001), b"x"))
            .collect();
        assert_ne!(a, b, "independent links must not share an RNG stream");
    }

    #[test]
    fn drop_first_is_exact() {
        let profile = ImpairmentProfile::new(1).with_rule(LinkRule::between(
            Ep::Svc(ServiceKind::Matching),
            Ep::Svc(ServiceKind::Sift),
            LinkImpairment::drop_first(2),
        ));
        let net = ImpairedNet::new(profile);
        net.register_port(9002, Ep::Svc(ServiceKind::Sift));
        let from = Ep::Svc(ServiceKind::Matching);
        assert_eq!(net.admit(from, addr(9002), b"req"), Verdict::Dropped);
        assert_eq!(net.admit(from, addr(9002), b"req"), Verdict::Dropped);
        assert_eq!(net.admit(from, addr(9002), b"req"), Verdict::Pass);
        // Other links untouched.
        assert_eq!(net.admit(Ep::Client, addr(9002), b"req"), Verdict::Pass);
    }

    #[test]
    fn corrupt_first_is_exact_and_after_drop_first() {
        let profile = ImpairmentProfile::new(2).with_rule(LinkRule::any(LinkImpairment {
            drop_first: 1,
            corrupt_first: 2,
            ..Default::default()
        }));
        let net = ImpairedNet::new(profile);
        assert_eq!(net.admit(Ep::Client, addr(9000), b"x"), Verdict::Dropped);
        assert_eq!(
            net.admit(Ep::Client, addr(9000), b"x"),
            Verdict::PassCorrupted
        );
        assert_eq!(
            net.admit(Ep::Client, addr(9000), b"x"),
            Verdict::PassCorrupted
        );
        assert_eq!(net.admit(Ep::Client, addr(9000), b"x"), Verdict::Pass);
    }

    #[test]
    fn corrupted_datagram_ships_with_one_byte_flipped() {
        let rx_sock = UdpSocket::bind("127.0.0.1:0").expect("bind");
        rx_sock
            .set_read_timeout(Some(Duration::from_millis(300)))
            .expect("timeout");
        let to = rx_sock.local_addr().expect("addr");
        let profile =
            ImpairmentProfile::new(4).with_rule(LinkRule::any(LinkImpairment::corrupt_first(1)));
        let net = ImpairedNet::new(profile);
        let tx_sock = RtSocket::new(
            Arc::new(UdpSocket::bind("127.0.0.1:0").expect("bind")),
            Ep::Client,
            Some(net),
        );
        assert_eq!(tx_sock.send_to(b"abc", to), SendDisposition::Sent);
        let mut buf = [0u8; 16];
        let (n, _) = rx_sock.recv_from(&mut buf).expect("corrupted datagram");
        assert_eq!(&buf[..n], &[b'a', b'b', b'c' ^ 0xFF]);
    }

    #[test]
    fn cell_mtu_makes_loss_length_dependent() {
        let lost_rate = |mtu: Option<usize>, len: usize| {
            let mut imp = LinkImpairment::loss(0.02);
            if let Some(m) = mtu {
                imp = imp.with_cell_mtu(m);
            }
            let profile = ImpairmentProfile::new(6).with_rule(LinkRule::any(imp));
            let net = ImpairedNet::new(profile);
            let payload = vec![0u8; len];
            let lost = (0..2_000)
                .filter(|_| net.admit(Ep::Client, addr(9000), &payload) == Verdict::Dropped)
                .count();
            lost as f64 / 2_000.0
        };
        let short = lost_rate(Some(1_400), 1_400);
        let long = lost_rate(Some(1_400), 11_200); // 8 cells
        assert!(
            long > short * 3.0,
            "8-cell datagrams should die far more often: short {short}, long {long}"
        );
        // Without an MTU the length is irrelevant.
        let flat_long = lost_rate(None, 11_200);
        assert!((flat_long - short).abs() < 0.02);
    }

    #[test]
    fn burst_rule_reuses_gilbert_elliott() {
        let profile =
            ImpairmentProfile::new(3).with_rule(LinkRule::any(LinkImpairment::bursty(0.2, 10.0)));
        let net = ImpairedNet::new(profile);
        let v = decisions(&net, 4_000);
        let lost = v.iter().filter(|&&x| x == Verdict::Dropped).count();
        let rate = lost as f64 / v.len() as f64;
        assert!(
            (rate - 0.2).abs() < 0.08,
            "burst loss rate {rate} far from configured 0.2"
        );
        // Losses arrive in runs (mean run length ≫ 1).
        let mut runs = Vec::new();
        let mut run = 0usize;
        for d in &v {
            if *d == Verdict::Dropped {
                run += 1;
            } else if run > 0 {
                runs.push(run);
                run = 0;
            }
        }
        let mean_run = runs.iter().sum::<usize>() as f64 / runs.len().max(1) as f64;
        assert!(mean_run > 2.0, "bursts too short: mean run {mean_run}");
    }

    #[test]
    fn delayed_datagrams_arrive_later_but_arrive() {
        let rx_sock = UdpSocket::bind("127.0.0.1:0").expect("bind");
        rx_sock
            .set_read_timeout(Some(Duration::from_millis(500)))
            .expect("timeout");
        let to = rx_sock.local_addr().expect("addr");
        let profile = ImpairmentProfile::new(9).with_rule(LinkRule::any(
            LinkImpairment::default().with_delay(Duration::from_millis(40), Duration::ZERO),
        ));
        let net = ImpairedNet::new(profile);
        let tx_sock = RtSocket::new(
            Arc::new(UdpSocket::bind("127.0.0.1:0").expect("bind")),
            Ep::Client,
            Some(net),
        );
        let t0 = Instant::now();
        assert_eq!(tx_sock.send_to(b"delayed", to), SendDisposition::Sent);
        let mut buf = [0u8; 64];
        let (n, _) = rx_sock.recv_from(&mut buf).expect("delayed datagram");
        assert_eq!(&buf[..n], b"delayed");
        assert!(
            t0.elapsed() >= Duration::from_millis(35),
            "arrived too early: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn duplication_doubles_datagrams() {
        let rx_sock = UdpSocket::bind("127.0.0.1:0").expect("bind");
        rx_sock
            .set_read_timeout(Some(Duration::from_millis(300)))
            .expect("timeout");
        let to = rx_sock.local_addr().expect("addr");
        let profile = ImpairmentProfile::new(11)
            .with_rule(LinkRule::any(LinkImpairment::default().with_duplicate(1.0)));
        let net = ImpairedNet::new(profile);
        let tx_sock = RtSocket::new(
            Arc::new(UdpSocket::bind("127.0.0.1:0").expect("bind")),
            Ep::Client,
            Some(net),
        );
        assert_eq!(tx_sock.send_to(b"twice", to), SendDisposition::Sent);
        let mut buf = [0u8; 64];
        let mut got = 0;
        while rx_sock.recv_from(&mut buf).is_ok() {
            got += 1;
            if got == 2 {
                break;
            }
        }
        assert_eq!(got, 2, "duplicate datagram never arrived");
    }

    #[test]
    fn unimpaired_links_pass_through() {
        let profile = ImpairmentProfile::new(5).with_rule(LinkRule::between(
            Ep::Client,
            Ep::Svc(ServiceKind::Primary),
            LinkImpairment::loss(1.0),
        ));
        let net = ImpairedNet::new(profile);
        net.register_port(9010, Ep::Svc(ServiceKind::Primary));
        net.register_port(9011, Ep::Svc(ServiceKind::Sift));
        assert_eq!(net.admit(Ep::Client, addr(9010), b"x"), Verdict::Dropped);
        assert_eq!(
            net.admit(Ep::Svc(ServiceKind::Primary), addr(9011), b"x"),
            Verdict::Pass,
            "rule is per-link, not global"
        );
    }
}
