//! Wire format for the real-UDP runtime.
//!
//! A message is fragmented into ≤[`CHUNK_BYTES`] datagrams, each carrying
//! a fixed header; the receiver reassembles by `(client, frame, step)`.
//! There is no retransmission — a missing fragment strands the message
//! until its reassembly slot is reclaimed, matching the pipeline's UDP
//! semantics on the testbed.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::Instant;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::message::ServiceKind;

/// Fragment payload size. Loopback allows ~64 KB datagrams; we stay well
/// below to keep the format valid for real NICs too.
pub const CHUNK_BYTES: usize = 32 * 1024;

/// Magic tag guarding against stray datagrams.
pub const MAGIC: u32 = 0x5343_4154; // "SCAT"

/// `flags` bit 0: this frame was chosen by trace sampling.
pub const FLAG_SAMPLED: u8 = 0b0000_0001;

/// `flags` bit 1: this message is *control traffic* (a fetch response),
/// not a pipeline frame. `matching` uses it during its fetch-wait to
/// route fragments to the fetch reassembler without ever consuming
/// frame traffic — the fix for the fetch-wait frame-swallowing bug.
pub const FLAG_CTRL: u8 = 0b0000_0010;

/// Fixed fragment header size (public so the v2 byte predictor can
/// account for framing overhead exactly).
pub const HEADER_BYTES: usize = 4 + 2 + 4 + 1 + 8 + 2 + 8 + 1 + 8 + 2 + 2 + 4;

/// The trace identity of a frame as the reassembly/forensics plane
/// reports it: which client's frame, and the trace flags it was
/// carrying (enough to rebuild its [`trace::TraceCtx`] and emit a
/// terminal on the right trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameKey {
    pub client: u16,
    pub frame_no: u32,
    pub flags: u8,
}

impl FrameKey {
    pub fn new(client: u16, frame_no: u32, flags: u8) -> FrameKey {
        FrameKey {
            client,
            frame_no,
            flags,
        }
    }

    /// Reconstruct the trace context this frame was carrying.
    pub fn trace_ctx(&self) -> trace::TraceCtx {
        trace::TraceCtx::new(self.client, self.frame_no, self.flags & FLAG_SAMPLED != 0)
    }
}

/// Why a datagram failed to parse. Malformed traffic on a UDP socket is
/// a fact of life, not a panic: callers count the reason and drop the
/// datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Shorter than the fixed fragment header.
    Truncated,
    /// Magic tag mismatch — a foreign or corrupted datagram.
    BadMagic,
    /// Step index outside the five pipeline services.
    BadStep,
    /// `frag_count == 0` or `frag_idx >= frag_count`.
    BadFragmentIndex,
    /// Body length disagrees with the header's length field.
    LengthMismatch,
    /// v2 envelope names a protocol version this receiver doesn't speak.
    BadVersion,
    /// v2 envelope names an unknown codec, or the payload failed to
    /// decompress to its declared length.
    BadCodec,
    /// v2 envelope names an unknown frame kind.
    BadKind,
    /// A typed payload (`decode_frame`/`decode_state`/`decode_result`)
    /// ended before its own structure said it would.
    PayloadTruncated,
    /// A typed payload carried a structurally impossible value (zero
    /// dimensions, absurd counts, non-UTF-8 names, length mismatch).
    PayloadValue,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WireError::Truncated => "datagram shorter than the fragment header",
            WireError::BadMagic => "magic tag mismatch",
            WireError::BadStep => "step index out of range",
            WireError::BadFragmentIndex => "fragment index/count invalid",
            WireError::LengthMismatch => "body length disagrees with header",
            WireError::BadVersion => "unsupported protocol version",
            WireError::BadCodec => "unknown codec or decompression failure",
            WireError::BadKind => "unknown frame kind",
            WireError::PayloadTruncated => "typed payload shorter than its structure",
            WireError::PayloadValue => "typed payload carries an impossible value",
        };
        f.write_str(s)
    }
}

impl std::error::Error for WireError {}

/// A pipeline message as it travels between service sockets.
#[derive(Debug, Clone, PartialEq)]
pub struct WireMsg {
    pub client: u16,
    pub frame_no: u32,
    /// Pipeline step this message is bound for.
    pub step: ServiceKind,
    /// Microseconds since the deployment epoch when the client emitted
    /// the frame (staleness filtering and E2E measurement).
    pub emit_micros: u64,
    /// The client's return port on loopback — the paper's messages carry
    /// "client's IP address and port number" so `matching` can deliver
    /// results without a session table.
    pub return_port: u16,
    /// Causal trace id (`client << 32 | frame_no`), carried end to end.
    pub trace_id: u64,
    /// Trace flags; see [`FLAG_SAMPLED`].
    pub flags: u8,
    /// Microseconds since the epoch when the *previous hop* sent this
    /// message — re-stamped per hop, so the receiver's `recv − sent` gap
    /// is the ingress-queue span (transit + socket buffer wait).
    pub sent_micros: u64,
    pub payload: Bytes,
}

impl WireMsg {
    pub fn age_ms(&self, epoch: Instant) -> f64 {
        let now_micros = epoch.elapsed().as_micros() as u64;
        now_micros.saturating_sub(self.emit_micros) as f64 / 1e3
    }

    /// Reconstruct the trace context this message carries.
    pub fn trace_ctx(&self) -> trace::TraceCtx {
        trace::TraceCtx::new(self.client, self.frame_no, self.flags & FLAG_SAMPLED != 0)
    }
}

/// Encode a message into its fragment datagrams.
///
/// The payload [`Bytes`] is never cloned here: each fragment copies only
/// its own `≤ CHUNK_BYTES` window once, into the datagram buffer the
/// socket needs anyway (header and body must be contiguous on the wire).
pub fn encode(msg: &WireMsg) -> Vec<Bytes> {
    let frag_count = msg.payload.len().div_ceil(CHUNK_BYTES).max(1);
    let mut out = Vec::with_capacity(frag_count);
    for i in 0..frag_count {
        let chunk = if msg.payload.is_empty() {
            &[][..]
        } else {
            let start = i * CHUNK_BYTES;
            &msg.payload[start..msg.payload.len().min(start + CHUNK_BYTES)]
        };
        let mut buf = BytesMut::with_capacity(HEADER_BYTES + chunk.len());
        buf.put_u32(MAGIC);
        buf.put_u16(msg.client);
        buf.put_u32(msg.frame_no);
        buf.put_u8(msg.step.index() as u8);
        buf.put_u64(msg.emit_micros);
        buf.put_u16(msg.return_port);
        buf.put_u64(msg.trace_id);
        buf.put_u8(msg.flags);
        buf.put_u64(msg.sent_micros);
        buf.put_u16(i as u16);
        buf.put_u16(frag_count as u16);
        buf.put_u32(chunk.len() as u32);
        buf.put_slice(chunk);
        out.push(buf.freeze());
    }
    out
}

/// A decoded fragment header + body.
#[derive(Debug, Clone, PartialEq)]
pub struct Fragment {
    pub client: u16,
    pub frame_no: u32,
    pub step: ServiceKind,
    pub emit_micros: u64,
    pub return_port: u16,
    pub trace_id: u64,
    pub flags: u8,
    pub sent_micros: u64,
    pub frag_idx: u16,
    pub frag_count: u16,
    pub body: Bytes,
}

/// Parse one datagram. Malformed or foreign packets yield a typed
/// [`WireError`] so the caller can count *why* before dropping, as a
/// UDP service must.
pub fn decode_fragment(datagram: &[u8]) -> Result<Fragment, WireError> {
    if datagram.len() < HEADER_BYTES {
        return Err(WireError::Truncated);
    }
    let mut buf = datagram;
    if buf.get_u32() != MAGIC {
        return Err(WireError::BadMagic);
    }
    let client = buf.get_u16();
    let frame_no = buf.get_u32();
    let step_idx = buf.get_u8() as usize;
    if step_idx >= 5 {
        return Err(WireError::BadStep);
    }
    let emit_micros = buf.get_u64();
    let return_port = buf.get_u16();
    let trace_id = buf.get_u64();
    let flags = buf.get_u8();
    let sent_micros = buf.get_u64();
    let frag_idx = buf.get_u16();
    let frag_count = buf.get_u16();
    let len = buf.get_u32() as usize;
    if frag_count == 0 || frag_idx >= frag_count {
        return Err(WireError::BadFragmentIndex);
    }
    if buf.remaining() != len {
        return Err(WireError::LengthMismatch);
    }
    Ok(Fragment {
        client,
        frame_no,
        step: ServiceKind::from_index(step_idx),
        emit_micros,
        return_port,
        trace_id,
        flags,
        sent_micros,
        frag_idx,
        frag_count,
        body: Bytes::copy_from_slice(buf),
    })
}

/// Reassembles fragments into messages. Bounded: oldest incomplete entry
/// is evicted past [`Reassembler::MAX_PENDING`] — frames that lost a
/// fragment must not leak memory. Evictions are logged (with the frame's
/// trace identity) so the service loop can attribute the loss, and the
/// victim key is tombstoned so a late straggler fragment cannot rebuild
/// a half-frame and double-report it.
#[derive(Debug, Default)]
pub struct Reassembler {
    pending: HashMap<(u16, u32, u8), PendingMsg>,
    /// Insertion order for eviction.
    order: Vec<(u16, u32, u8)>,
    /// Keys evicted as incomplete; late fragments for these are ignored.
    tombstones: HashSet<(u16, u32, u8)>,
    /// Evicted frames awaiting drop attribution.
    evicted: Vec<FrameKey>,
}

#[derive(Debug)]
struct PendingMsg {
    emit_micros: u64,
    return_port: u16,
    trace_id: u64,
    flags: u8,
    sent_micros: u64,
    parts: Vec<Option<Bytes>>,
    received: usize,
    /// When the first fragment arrived — [`Reassembler::sweep`] evicts
    /// entries that have waited longer than the caller's patience.
    first_seen: Instant,
}

impl Reassembler {
    pub const MAX_PENDING: usize = 64;

    /// Tombstone-set bound; cleared wholesale past this (a late fragment
    /// for a long-evicted frame then merely restarts a pending entry that
    /// will itself age out — bounded memory matters more than perfection).
    const MAX_TOMBSTONES: usize = 4096;

    pub fn new() -> Self {
        Self::default()
    }

    /// Offer one fragment; returns the completed message when the last
    /// fragment lands.
    pub fn offer(&mut self, frag: Fragment) -> Option<WireMsg> {
        let key = (frag.client, frag.frame_no, frag.step.index() as u8);
        if self.tombstones.contains(&key) {
            return None;
        }
        // Single-fragment fast path (the overwhelmingly common case for
        // control and result messages): the fragment body *is* the
        // payload — hand the `Bytes` through without a pending entry or
        // a reassembly copy.
        if frag.frag_count == 1 {
            return Some(WireMsg {
                client: frag.client,
                frame_no: frag.frame_no,
                step: frag.step,
                emit_micros: frag.emit_micros,
                return_port: frag.return_port,
                trace_id: frag.trace_id,
                flags: frag.flags,
                sent_micros: frag.sent_micros,
                payload: frag.body,
            });
        }
        let entry = self.pending.entry(key).or_insert_with(|| {
            self.order.push(key);
            PendingMsg {
                emit_micros: frag.emit_micros,
                return_port: frag.return_port,
                trace_id: frag.trace_id,
                flags: frag.flags,
                sent_micros: frag.sent_micros,
                parts: vec![None; frag.frag_count as usize],
                received: 0,
                first_seen: Instant::now(),
            }
        });
        if (frag.frag_idx as usize) < entry.parts.len()
            && entry.parts[frag.frag_idx as usize].is_none()
        {
            entry.parts[frag.frag_idx as usize] = Some(frag.body);
            entry.received += 1;
        }
        if entry.received == entry.parts.len() {
            let entry = self.pending.remove(&key).expect("entry exists");
            self.order.retain(|k| *k != key);
            let total: usize = entry.parts.iter().flatten().map(Bytes::len).sum();
            let mut payload = BytesMut::with_capacity(total);
            for part in entry.parts {
                payload.put_slice(&part.expect("all parts received"));
            }
            return Some(WireMsg {
                client: frag.client,
                frame_no: frag.frame_no,
                step: frag.step,
                emit_micros: entry.emit_micros,
                return_port: entry.return_port,
                trace_id: entry.trace_id,
                flags: entry.flags,
                sent_micros: entry.sent_micros,
                payload: payload.freeze(),
            });
        }
        // Evict the oldest incomplete message beyond the cap.
        if self.pending.len() > Self::MAX_PENDING {
            let victim = self.order.remove(0);
            if let Some(lost) = self.pending.remove(&victim) {
                self.evicted
                    .push(FrameKey::new(victim.0, victim.1, lost.flags));
            }
            if self.tombstones.len() >= Self::MAX_TOMBSTONES {
                self.tombstones.clear();
            }
            self.tombstones.insert(victim);
        }
        None
    }

    /// Take the log of frames evicted incomplete since the last call —
    /// enough to emit a fragment-loss terminal on the frame's trace.
    pub fn drain_evicted(&mut self) -> Vec<FrameKey> {
        std::mem::take(&mut self.evicted)
    }

    /// Evict every incomplete entry whose *first* fragment is older than
    /// `max_age`. Under injected fragment loss the capacity-based
    /// eviction above only fires when traffic keeps flowing; a quiet
    /// link would otherwise strand a half-received frame forever with
    /// no drop attribution. Victims land in the same evicted log (and
    /// tombstone set) as capacity evictions.
    pub fn sweep(&mut self, max_age: std::time::Duration) {
        let now = Instant::now();
        let mut victims: Vec<(u16, u32, u8)> = Vec::new();
        for (key, entry) in &self.pending {
            if now.duration_since(entry.first_seen) > max_age {
                victims.push(*key);
            }
        }
        for key in victims {
            if let Some(lost) = self.pending.remove(&key) {
                self.evicted.push(FrameKey::new(key.0, key.1, lost.flags));
            }
            self.order.retain(|k| *k != key);
            if self.tombstones.len() >= Self::MAX_TOMBSTONES {
                self.tombstones.clear();
            }
            self.tombstones.insert(key);
        }
    }

    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Identities of the partially-reassembled frames currently held.
    /// A crashing service reports these so the supervisor can attribute
    /// them as crash-lost.
    pub fn pending_keys(&self) -> Vec<FrameKey> {
        self.pending
            .iter()
            .map(|(k, v)| FrameKey::new(k.0, k.1, v.flags))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Typed payloads
// ---------------------------------------------------------------------

/// A grayscale frame payload (u8 pixels).
pub fn encode_frame(img: &vision::GrayImage) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + img.width() * img.height());
    buf.put_u32(img.width() as u32);
    buf.put_u32(img.height() as u32);
    for &v in img.data() {
        buf.put_u8((v.clamp(0.0, 1.0) * 255.0) as u8);
    }
    buf.freeze()
}

/// Decode a frame payload. Typed errors (like [`decode_fragment`]'s)
/// so malformed-payload drops get exact attribution instead of a bare
/// `None`.
pub fn decode_frame(mut buf: Bytes) -> Result<vision::GrayImage, WireError> {
    if buf.remaining() < 8 {
        return Err(WireError::PayloadTruncated);
    }
    let w = buf.get_u32() as usize;
    let h = buf.get_u32() as usize;
    if w == 0 || h == 0 {
        return Err(WireError::PayloadValue);
    }
    if buf.remaining() != w * h {
        return Err(if buf.remaining() < w * h {
            WireError::PayloadTruncated
        } else {
            WireError::PayloadValue
        });
    }
    let data: Vec<f32> = buf.iter().map(|&b| b as f32 / 255.0).collect();
    Ok(vision::GrayImage::from_vec(w, h, data))
}

/// Descriptor-set payload: keypoint geometry + 128-d vectors, plus an
/// optional Fisher vector (set after `encoding`) and candidate object
/// ids (set after `lsh`) — the frame-embedded state of scAtteR++.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameState {
    pub descriptors: Vec<vision::Descriptor>,
    pub fisher: Vec<f32>,
    pub candidates: Vec<u32>,
}

pub fn encode_state(state: &FrameState) -> Bytes {
    // Exact-size preallocation: descriptors dominate (534 B each), and
    // growing a BytesMut through several hundred KB reallocates the
    // whole frame-state payload multiple times otherwise.
    let cap = 12
        + state.descriptors.len() * (5 * 4 + 2 + 128 * 4)
        + state.fisher.len() * 4
        + state.candidates.len() * 4;
    let mut buf = BytesMut::with_capacity(cap);
    buf.put_u32(state.descriptors.len() as u32);
    for d in &state.descriptors {
        let k = &d.keypoint;
        buf.put_f32(k.x);
        buf.put_f32(k.y);
        buf.put_f32(k.scale);
        buf.put_f32(k.orientation);
        buf.put_f32(k.response);
        buf.put_u8(k.octave as u8);
        buf.put_u8(k.level as u8);
        for &v in &d.v {
            buf.put_f32(v);
        }
    }
    buf.put_u32(state.fisher.len() as u32);
    for &v in &state.fisher {
        buf.put_f32(v);
    }
    buf.put_u32(state.candidates.len() as u32);
    for &c in &state.candidates {
        buf.put_u32(c);
    }
    buf.freeze()
}

/// Decode a frame-state payload; typed errors like [`decode_frame`].
pub fn decode_state(mut buf: Bytes) -> Result<FrameState, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::PayloadTruncated);
    }
    let n = buf.get_u32() as usize;
    if n > 100_000 {
        return Err(WireError::PayloadValue);
    }
    let mut descriptors = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 5 * 4 + 2 + 128 * 4 {
            return Err(WireError::PayloadTruncated);
        }
        let keypoint = vision::Keypoint {
            x: buf.get_f32(),
            y: buf.get_f32(),
            scale: buf.get_f32(),
            orientation: buf.get_f32(),
            response: buf.get_f32(),
            octave: buf.get_u8() as usize,
            level: buf.get_u8() as usize,
        };
        let mut v = [0f32; 128];
        for slot in &mut v {
            *slot = buf.get_f32();
        }
        descriptors.push(vision::Descriptor { keypoint, v });
    }
    if buf.remaining() < 4 {
        return Err(WireError::PayloadTruncated);
    }
    let nf = buf.get_u32() as usize;
    if buf.remaining() < nf * 4 {
        return Err(WireError::PayloadTruncated);
    }
    let fisher = (0..nf).map(|_| buf.get_f32()).collect();
    if buf.remaining() < 4 {
        return Err(WireError::PayloadTruncated);
    }
    let nc = buf.get_u32() as usize;
    if buf.remaining() != nc * 4 {
        return Err(if buf.remaining() < nc * 4 {
            WireError::PayloadTruncated
        } else {
            WireError::PayloadValue
        });
    }
    let candidates = (0..nc).map(|_| buf.get_u32()).collect();
    Ok(FrameState {
        descriptors,
        fisher,
        candidates,
    })
}

/// One recognized object: its name and projected box corners.
pub type ResultEntry = (String, [(f64, f64); 4]);

/// Result payload: recognized object names + projected corners.
pub fn encode_result(recognitions: &[ResultEntry]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u16(recognitions.len() as u16);
    for (name, corners) in recognitions {
        buf.put_u8(name.len() as u8);
        buf.put_slice(name.as_bytes());
        for &(x, y) in corners {
            buf.put_f32(x as f32);
            buf.put_f32(y as f32);
        }
    }
    buf.freeze()
}

/// Decode a result payload; typed errors like [`decode_frame`].
pub fn decode_result(mut buf: Bytes) -> Result<Vec<ResultEntry>, WireError> {
    if buf.remaining() < 2 {
        return Err(WireError::PayloadTruncated);
    }
    let n = buf.get_u16() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 1 {
            return Err(WireError::PayloadTruncated);
        }
        let len = buf.get_u8() as usize;
        if buf.remaining() < len + 32 {
            return Err(WireError::PayloadTruncated);
        }
        let name = String::from_utf8(buf.copy_to_bytes(len).to_vec())
            .map_err(|_| WireError::PayloadValue)?;
        let mut corners = [(0.0, 0.0); 4];
        for c in &mut corners {
            *c = (buf.get_f32() as f64, buf.get_f32() as f64);
        }
        out.push((name, corners));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(payload_len: usize) -> WireMsg {
        WireMsg {
            client: 3,
            frame_no: 42,
            step: ServiceKind::Encoding,
            emit_micros: 123_456,
            return_port: 40_123,
            trace_id: (3u64 << 32) | 42,
            flags: FLAG_SAMPLED,
            sent_micros: 123_500,
            payload: Bytes::from(vec![7u8; payload_len]),
        }
    }

    #[test]
    fn small_message_single_fragment_round_trip() {
        let m = msg(100);
        let frames = encode(&m);
        assert_eq!(frames.len(), 1);
        let frag = decode_fragment(&frames[0]).expect("valid fragment");
        let mut r = Reassembler::new();
        let out = r.offer(frag).expect("complete after one fragment");
        assert_eq!(out, m);
    }

    #[test]
    fn large_message_fragments_and_reassembles() {
        let m = msg(CHUNK_BYTES * 3 + 17);
        let frames = encode(&m);
        assert_eq!(frames.len(), 4);
        let mut r = Reassembler::new();
        // Deliver out of order.
        let mut frags: Vec<_> = frames.iter().map(|f| decode_fragment(f).unwrap()).collect();
        frags.reverse();
        let mut done = None;
        for f in frags {
            done = r.offer(f);
        }
        assert_eq!(done.expect("complete"), m);
        assert_eq!(r.pending_count(), 0);
    }

    #[test]
    fn missing_fragment_never_completes() {
        let m = msg(CHUNK_BYTES * 2);
        let frames = encode(&m);
        let mut r = Reassembler::new();
        assert!(r.offer(decode_fragment(&frames[0]).unwrap()).is_none());
        assert_eq!(r.pending_count(), 1);
    }

    #[test]
    fn duplicate_fragment_is_idempotent() {
        let m = msg(CHUNK_BYTES + 5);
        let frames = encode(&m);
        let mut r = Reassembler::new();
        let f0 = decode_fragment(&frames[0]).unwrap();
        assert!(r.offer(f0.clone()).is_none());
        assert!(r.offer(f0).is_none(), "duplicate must not complete");
        let out = r.offer(decode_fragment(&frames[1]).unwrap());
        assert_eq!(out.unwrap(), m);
    }

    #[test]
    fn garbage_datagrams_rejected_with_reason() {
        assert_eq!(decode_fragment(&[]), Err(WireError::Truncated));
        assert_eq!(decode_fragment(&[0u8; 10]), Err(WireError::Truncated));
        let good = encode(&msg(10))[0].to_vec();
        let mut bogus = good.clone();
        bogus[0] ^= 0xFF; // corrupt magic
        assert_eq!(decode_fragment(&bogus), Err(WireError::BadMagic));
        let mut bad_step = good.clone();
        bad_step[10] = 9; // step byte out of range
        assert_eq!(decode_fragment(&bad_step), Err(WireError::BadStep));
        let mut short_body = good.clone();
        short_body.pop(); // body one byte shorter than header claims
        assert_eq!(decode_fragment(&short_body), Err(WireError::LengthMismatch));
        let mut bad_frag = good;
        // frag_count field (two bytes after frag_idx) zeroed.
        let off = HEADER_BYTES - 6;
        bad_frag[off] = 0;
        bad_frag[off + 1] = 0;
        assert_eq!(decode_fragment(&bad_frag), Err(WireError::BadFragmentIndex));
    }

    #[test]
    fn trace_fields_survive_the_wire() {
        let m = msg(64);
        let frag = decode_fragment(&encode(&m)[0]).unwrap();
        assert_eq!(frag.trace_id, (3u64 << 32) | 42);
        assert_eq!(frag.flags, FLAG_SAMPLED);
        assert_eq!(frag.sent_micros, 123_500);
        let out = Reassembler::new().offer(frag).unwrap();
        assert_eq!(out, m);
        let ctx = out.trace_ctx();
        assert!(ctx.sampled);
        assert_eq!(ctx.trace_id, (3u64 << 32) | 42);
    }

    #[test]
    fn eviction_logs_loss_and_tombstones_stragglers() {
        let mut r = Reassembler::new();
        let mut all_frames = Vec::new();
        for i in 0..(Reassembler::MAX_PENDING as u32 + 1) {
            let mut m = msg(CHUNK_BYTES * 2);
            m.frame_no = i;
            m.trace_id = i as u64;
            let frames = encode(&m);
            assert!(r.offer(decode_fragment(&frames[0]).unwrap()).is_none());
            all_frames.push(frames);
        }
        let evicted = r.drain_evicted();
        assert_eq!(
            evicted,
            vec![FrameKey::new(3, 0, FLAG_SAMPLED)],
            "oldest frame evicted"
        );
        assert!(evicted[0].trace_ctx().sampled);
        assert!(r.drain_evicted().is_empty(), "drain is one-shot");
        // The straggler second fragment of the evicted frame must not
        // complete a half message nor create a fresh pending entry.
        let straggler = decode_fragment(&all_frames[0][1]).unwrap();
        let before = r.pending_count();
        assert!(r.offer(straggler).is_none());
        assert_eq!(r.pending_count(), before, "tombstoned key stays dead");
    }

    #[test]
    fn sweep_evicts_aged_incomplete_entries() {
        let m = msg(CHUNK_BYTES * 2);
        let frames = encode(&m);
        let mut r = Reassembler::new();
        assert!(r.offer(decode_fragment(&frames[0]).unwrap()).is_none());
        // Young entries survive a sweep.
        r.sweep(std::time::Duration::from_secs(60));
        assert_eq!(r.pending_count(), 1);
        assert!(r.drain_evicted().is_empty());
        // Zero patience evicts, attributes, and tombstones.
        r.sweep(std::time::Duration::ZERO);
        assert_eq!(r.pending_count(), 0);
        assert_eq!(r.drain_evicted(), vec![FrameKey::new(3, 42, FLAG_SAMPLED)]);
        let straggler = decode_fragment(&frames[1]).unwrap();
        assert!(r.offer(straggler).is_none(), "swept key is tombstoned");
        assert_eq!(r.pending_count(), 0);
    }

    #[test]
    fn ctrl_flag_survives_the_wire_and_is_distinct() {
        assert_eq!(FLAG_SAMPLED & FLAG_CTRL, 0, "flag bits must not overlap");
        let mut m = msg(32);
        m.flags = FLAG_CTRL | FLAG_SAMPLED;
        let frag = decode_fragment(&encode(&m)[0]).unwrap();
        assert_eq!(frag.flags & FLAG_CTRL, FLAG_CTRL);
        let out = Reassembler::new().offer(frag).unwrap();
        assert_eq!(out.flags, FLAG_CTRL | FLAG_SAMPLED);
        assert!(out.trace_ctx().sampled, "sampling survives alongside ctrl");
    }

    #[test]
    fn reassembler_evicts_beyond_cap() {
        let mut r = Reassembler::new();
        for i in 0..(Reassembler::MAX_PENDING as u32 + 10) {
            let m = WireMsg {
                client: 0,
                frame_no: i,
                step: ServiceKind::Sift,
                emit_micros: 0,
                return_port: 0,
                trace_id: 0,
                flags: 0,
                sent_micros: 0,
                payload: Bytes::from(vec![0u8; CHUNK_BYTES * 2]),
            };
            let frames = encode(&m);
            r.offer(decode_fragment(&frames[0]).unwrap());
        }
        assert!(r.pending_count() <= Reassembler::MAX_PENDING + 1);
    }

    #[test]
    fn frame_payload_round_trip() {
        let mut img = vision::GrayImage::new(8, 4);
        img.set(3, 2, 0.5);
        let encoded = encode_frame(&img);
        let back = decode_frame(encoded).expect("valid frame payload");
        assert_eq!(back.width(), 8);
        assert_eq!(back.height(), 4);
        assert!((back.get(3, 2) - 0.5).abs() < 0.01);
    }

    #[test]
    fn state_payload_round_trip() {
        let kp = vision::Keypoint {
            x: 1.0,
            y: 2.0,
            scale: 3.0,
            orientation: 0.5,
            response: 0.9,
            octave: 1,
            level: 2,
        };
        let state = FrameState {
            descriptors: vec![vision::Descriptor {
                keypoint: kp,
                v: [0.25; 128],
            }],
            fisher: vec![0.5, -0.5],
            candidates: vec![2, 0],
        };
        let back = decode_state(encode_state(&state)).expect("valid state");
        assert_eq!(back, state);
    }

    #[test]
    fn result_payload_round_trip() {
        let recs = vec![(
            "monitor".to_string(),
            [(1.0, 2.0), (3.0, 4.0), (5.0, 6.0), (7.0, 8.0)],
        )];
        let back = decode_result(encode_result(&recs)).expect("valid result");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].0, "monitor");
        assert_eq!(back[0].1[2], (5.0, 6.0));
    }

    #[test]
    fn typed_payload_errors_are_exact() {
        assert_eq!(
            decode_frame(Bytes::from_static(&[0, 0])),
            Err(WireError::PayloadTruncated)
        );
        // Valid header, zero dimensions.
        let mut z = BytesMut::new();
        z.put_u32(0);
        z.put_u32(4);
        assert_eq!(decode_frame(z.freeze()), Err(WireError::PayloadValue));
        // Header promises more pixels than the body carries.
        let mut short = BytesMut::new();
        short.put_u32(4);
        short.put_u32(4);
        short.put_slice(&[1, 2, 3]);
        assert_eq!(
            decode_frame(short.freeze()),
            Err(WireError::PayloadTruncated)
        );
        assert_eq!(
            decode_state(Bytes::from_static(&[0])),
            Err(WireError::PayloadTruncated)
        );
        // Absurd descriptor count.
        let mut huge = BytesMut::new();
        huge.put_u32(200_000);
        assert_eq!(decode_state(huge.freeze()), Err(WireError::PayloadValue));
        assert_eq!(
            decode_result(Bytes::from_static(&[])),
            Err(WireError::PayloadTruncated)
        );
        // Non-UTF-8 name.
        let mut bad = BytesMut::new();
        bad.put_u16(1);
        bad.put_u8(2);
        bad.put_slice(&[0xFF, 0xFE]);
        bad.put_slice(&[0u8; 32]);
        assert_eq!(decode_result(bad.freeze()), Err(WireError::PayloadValue));
    }

    #[test]
    fn state_grows_frame_size_like_the_paper() {
        // A realistic descriptor count makes the embedded-state payload
        // several times the compact one — the 180 KB → 480 KB effect.
        let kp = vision::Keypoint {
            x: 0.0,
            y: 0.0,
            scale: 1.0,
            orientation: 0.0,
            response: 1.0,
            octave: 0,
            level: 1,
        };
        let with_state = FrameState {
            descriptors: vec![
                vision::Descriptor {
                    keypoint: kp,
                    v: [0.1; 128]
                };
                300
            ],
            fisher: vec![0.0; 128],
            candidates: vec![],
        };
        let without_state = FrameState {
            descriptors: vec![],
            fisher: vec![0.0; 128],
            candidates: vec![],
        };
        let big = encode_state(&with_state).len();
        let small = encode_state(&without_state).len();
        assert!(big > small * 50, "state must dominate: {big} vs {small}");
    }
}
