//! The *stateful* (scAtteR-baseline) variant of the real-UDP runtime:
//! `sift` keeps each frame's descriptors in an in-memory store and
//! `matching` fetches them over a real socket round-trip — the
//! dependency loop of §3.1 running on actual datagrams.
//!
//! Differences from the stateless deployment in [`super::services`]:
//!
//! - `sift` forwards only a *stub* state (empty descriptor list), parking
//!   the real descriptors in its store under `(client, frame)` with a
//!   TTL;
//! - `matching`, upon receiving the `lsh` output, sends a `FetchReq`
//!   datagram to `sift` and parks the frame; `sift` answers with the
//!   descriptors (or silence if evicted); a parked frame times out after
//!   [`StatefulOptions::fetch_timeout`];
//! - all services drop frames that arrive while one is being processed
//!   (single-threaded receive loop ≈ one-in-one-out; the socket buffer
//!   provides only minimal slack).

use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use simcore::SimRng;
use vision::keypoints::DetectorParams;

use crate::message::ServiceKind;
use crate::obs::RtSvcObs;
use crate::runtime::services::{epoch_ns, send_msg_obs, SharedCtx, SvcStats};
use crate::runtime::wire::{
    self, decode_frame, decode_state, encode_result, encode_state, FrameState, Reassembler, WireMsg,
};

/// Control datagrams of the fetch protocol ride the payload of a
/// `WireMsg` whose `step` is the *origin* service, flagged by a leading
/// control byte.
const CTRL_FETCH_REQ: u8 = 0xF1;
const CTRL_FETCH_RSP: u8 = 0xF2;

/// Options for the stateful deployment.
#[derive(Debug, Clone)]
pub struct StatefulOptions {
    /// How long `matching` waits for sift's feature response.
    pub fetch_timeout: Duration,
    /// How long `sift` keeps un-fetched state.
    pub state_ttl: Duration,
}

impl Default for StatefulOptions {
    fn default() -> Self {
        StatefulOptions {
            fetch_timeout: Duration::from_millis(500),
            state_ttl: Duration::from_secs(5),
        }
    }
}

/// Encode a fetch request for `(client, frame)` with the requester's port.
fn encode_fetch_req(client: u16, frame_no: u32, reply_port: u16) -> Bytes {
    let mut b = BytesMut::with_capacity(9);
    b.put_u8(CTRL_FETCH_REQ);
    b.put_u16(client);
    b.put_u32(frame_no);
    b.put_u16(reply_port);
    b.freeze()
}

fn decode_fetch_req(mut buf: Bytes) -> Option<(u16, u32, u16)> {
    if buf.remaining() != 9 || buf.get_u8() != CTRL_FETCH_REQ {
        return None;
    }
    Some((buf.get_u16(), buf.get_u32(), buf.get_u16()))
}

fn encode_fetch_rsp(state: &FrameState) -> Bytes {
    let body = encode_state(state);
    let mut b = BytesMut::with_capacity(1 + body.len());
    b.put_u8(CTRL_FETCH_RSP);
    b.put_slice(&body);
    b.freeze()
}

fn decode_fetch_rsp(mut buf: Bytes) -> Option<FrameState> {
    if !buf.has_remaining() || buf.get_u8() != CTRL_FETCH_RSP {
        return None;
    }
    decode_state(buf)
}

/// `sift` with a stateful feature store: detects/describes, parks the
/// state, forwards a stub, and serves fetch requests.
#[allow(clippy::too_many_arguments)]
pub fn run_stateful_sift(
    socket: UdpSocket,
    next: SocketAddr,
    ctx: Arc<SharedCtx>,
    stats: Arc<SvcStats>,
    shutdown: Arc<AtomicBool>,
    opts: StatefulOptions,
    store_size: Arc<AtomicU64>,
    tracer: trace::ThreadTracer,
    track: trace::TrackId,
    obs: Option<RtSvcObs>,
) {
    let stage = ServiceKind::Sift.index() as u8;
    socket
        .set_read_timeout(Some(Duration::from_millis(20)))
        .expect("set_read_timeout");
    let mut reassembler = Reassembler::new();
    let mut buf = vec![0u8; 65_536];
    let mut store: HashMap<(u16, u32), (FrameState, Instant)> = HashMap::new();
    while !shutdown.load(Ordering::Relaxed) {
        // TTL sweep.
        let ttl = opts.state_ttl;
        store.retain(|_, (_, at)| at.elapsed() <= ttl);
        store_size.store(store.len() as u64, Ordering::Relaxed);
        if let Some(o) = &obs {
            o.state_store.set(store.len() as f64);
        }

        let n = match socket.recv_from(&mut buf) {
            Ok((n, _)) => n,
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        };
        // Control datagrams (fetch requests) are not fragmented.
        if n >= 1 && buf[0] == CTRL_FETCH_REQ {
            if let Some((client, frame_no, reply_port)) =
                decode_fetch_req(Bytes::copy_from_slice(&buf[..n]))
            {
                if let Some((state, _)) = store.remove(&(client, frame_no)) {
                    let rsp = WireMsg {
                        client,
                        frame_no,
                        step: ServiceKind::Matching,
                        emit_micros: 0,
                        return_port: 0,
                        // Fetch responses ride inside matching's
                        // FetchWait span; they carry identity only.
                        trace_id: ((client as u64) << 32) | frame_no as u64,
                        flags: 0,
                        sent_micros: 0,
                        payload: encode_fetch_rsp(&state),
                    };
                    let to = SocketAddr::from(([127, 0, 0, 1], reply_port));
                    send_msg_obs(&socket, to, &rsp, &stats, obs.as_ref());
                }
            }
            continue;
        }
        let frag = match wire::decode_fragment(&buf[..n]) {
            Ok(frag) => frag,
            Err(_) => {
                stats.malformed.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = &obs {
                    o.malformed.inc();
                }
                continue;
            }
        };
        let completed = reassembler.offer(frag);
        if tracer.is_enabled() || obs.is_some() {
            let at_ns = epoch_ns(ctx.epoch);
            for (client, frame_no, flags) in reassembler.drain_evicted() {
                let tctx = trace::TraceCtx::new(client, frame_no, flags & wire::FLAG_SAMPLED != 0);
                tracer.terminal(
                    tctx,
                    at_ns,
                    trace::FrameFate::Dropped(trace::DropReason::FragmentLoss),
                );
                if let Some(o) = &obs {
                    o.drop_fragment.inc();
                }
            }
        }
        if let Some(o) = &obs {
            o.reassembly_pending.set(reassembler.pending_count() as f64);
        }
        let Some(msg) = completed else {
            continue;
        };
        stats.received.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &obs {
            o.ingress.inc();
        }
        let tctx = msg.trace_ctx();
        let recv_ns = epoch_ns(ctx.epoch);
        tracer.span(
            tctx,
            track,
            stage,
            trace::Phase::IngressQueue,
            (msg.sent_micros * 1_000).min(recv_ns),
            recv_ns,
        );
        let Some(img) = decode_frame(msg.payload.clone()) else {
            continue;
        };
        let (pyr, kps) = vision::keypoints::detect(&img, &DetectorParams::default());
        let mut descriptors = vision::descriptor::describe_all(&pyr, &kps);
        descriptors.truncate(ctx.max_descriptors);
        // Park the real state; forward a stub so downstream stages can
        // still compute the Fisher/LSH path... which needs descriptors.
        // Like the real scAtteR, the compact representation (descriptors
        // for encoding) flows on, but the *frame correlation data* that
        // matching needs stays here. We model that split by forwarding
        // descriptors (compact) and parking the full state (descriptors +
        // provenance) for matching's pose step.
        let state = FrameState {
            descriptors: descriptors.clone(),
            fisher: Vec::new(),
            candidates: Vec::new(),
        };
        store.insert((msg.client, msg.frame_no), (state.clone(), Instant::now()));
        store_size.store(store.len() as u64, Ordering::Relaxed);
        let done_ns = epoch_ns(ctx.epoch);
        tracer.span(tctx, track, stage, trace::Phase::Compute, recv_ns, done_ns);
        let fwd = WireMsg {
            client: msg.client,
            frame_no: msg.frame_no,
            step: ServiceKind::Encoding,
            emit_micros: msg.emit_micros,
            return_port: msg.return_port,
            trace_id: msg.trace_id,
            flags: msg.flags,
            sent_micros: done_ns / 1_000,
            payload: encode_state(&FrameState {
                descriptors,
                fisher: Vec::new(),
                candidates: Vec::new(),
            }),
        };
        stats.processed.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &obs {
            o.processed.inc();
            o.latency_ms
                .record(done_ns.saturating_sub(recv_ns) as f64 / 1e6);
        }
        send_msg_obs(&socket, next, &fwd, &stats, obs.as_ref());
    }
}

/// `matching` with the fetch loop: on lsh output, request sift's parked
/// state, wait (bounded), then match + pose and reply to the client.
#[allow(clippy::too_many_arguments)]
pub fn run_stateful_matching(
    socket: UdpSocket,
    sift_addr: SocketAddr,
    ctx: Arc<SharedCtx>,
    stats: Arc<SvcStats>,
    shutdown: Arc<AtomicBool>,
    opts: StatefulOptions,
    fetch_failures: Arc<AtomicU64>,
    rng_seed: u64,
    tracer: trace::ThreadTracer,
    track: trace::TrackId,
    obs: Option<RtSvcObs>,
) {
    let stage = ServiceKind::Matching.index() as u8;
    socket
        .set_read_timeout(Some(Duration::from_millis(20)))
        .expect("set_read_timeout");
    let mut reassembler = Reassembler::new();
    let mut rng = SimRng::new(rng_seed);
    let mut buf = vec![0u8; 65_536];
    let my_port = socket.local_addr().expect("local addr").port();
    while !shutdown.load(Ordering::Relaxed) {
        let n = match socket.recv_from(&mut buf) {
            Ok((n, _)) => n,
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        };
        let frag = match wire::decode_fragment(&buf[..n]) {
            Ok(frag) => frag,
            Err(_) => {
                stats.malformed.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = &obs {
                    o.malformed.inc();
                }
                continue;
            }
        };
        let completed = reassembler.offer(frag);
        if tracer.is_enabled() || obs.is_some() {
            let at_ns = epoch_ns(ctx.epoch);
            for (client, frame_no, flags) in reassembler.drain_evicted() {
                let tctx = trace::TraceCtx::new(client, frame_no, flags & wire::FLAG_SAMPLED != 0);
                tracer.terminal(
                    tctx,
                    at_ns,
                    trace::FrameFate::Dropped(trace::DropReason::FragmentLoss),
                );
                if let Some(o) = &obs {
                    o.drop_fragment.inc();
                }
            }
        }
        if let Some(o) = &obs {
            o.reassembly_pending.set(reassembler.pending_count() as f64);
        }
        let Some(msg) = completed else {
            continue;
        };
        stats.received.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &obs {
            o.ingress.inc();
        }
        let tctx = msg.trace_ctx();
        let recv_ns = epoch_ns(ctx.epoch);
        tracer.span(
            tctx,
            track,
            stage,
            trace::Phase::IngressQueue,
            (msg.sent_micros * 1_000).min(recv_ns),
            recv_ns,
        );
        let Some(lsh_state) = decode_state(msg.payload.clone()) else {
            continue;
        };

        // The dependency loop, for real: ask sift for the frame state and
        // busy-wait (this thread serves nothing else meanwhile — the
        // "matching is busy waiting for sift's output" behaviour).
        let req = encode_fetch_req(msg.client, msg.frame_no, my_port);
        let fetch_sent_ns = epoch_ns(ctx.epoch);
        let _ = socket.send_to(&req, sift_addr);
        let deadline = Instant::now() + opts.fetch_timeout;
        let mut fetched: Option<FrameState> = None;
        let mut fetch_reasm = Reassembler::new();
        while Instant::now() < deadline {
            let n = match socket.recv_from(&mut buf) {
                Ok((n, _)) => n,
                Err(_) => continue,
            };
            match wire::decode_fragment(&buf[..n]) {
                Ok(frag) => {
                    let key_matches = frag.client == msg.client && frag.frame_no == msg.frame_no;
                    if let Some(rsp) = fetch_reasm.offer(frag) {
                        if key_matches {
                            if let Some(state) = decode_fetch_rsp(rsp.payload) {
                                fetched = Some(state);
                                break;
                            }
                        }
                    }
                }
                Err(_) => {
                    stats.malformed.fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = &obs {
                        o.malformed.inc();
                    }
                }
            }
        }
        let fetch_end_ns = epoch_ns(ctx.epoch);
        tracer.span(
            tctx,
            track,
            stage,
            trace::Phase::FetchWait,
            fetch_sent_ns,
            fetch_end_ns,
        );
        let Some(state) = fetched else {
            fetch_failures.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = &obs {
                o.drop_stale_fetch.inc();
            }
            tracer.terminal(
                tctx,
                fetch_end_ns,
                trace::FrameFate::Dropped(trace::DropReason::StaleFetch),
            );
            continue;
        };

        let mut recognitions = Vec::new();
        for &cand in &lsh_state.candidates {
            if let Some(rec) = ctx
                .db
                .match_object(cand as usize, &state.descriptors, 0.0, &mut rng)
            {
                recognitions.push((rec.name, rec.pose.corners));
            }
        }
        let done_ns = epoch_ns(ctx.epoch);
        tracer.span(
            tctx,
            track,
            stage,
            trace::Phase::Compute,
            fetch_end_ns,
            done_ns,
        );
        let out = WireMsg {
            client: msg.client,
            frame_no: msg.frame_no,
            step: ServiceKind::Primary, // terminal hop marker
            emit_micros: msg.emit_micros,
            return_port: msg.return_port,
            trace_id: msg.trace_id,
            flags: msg.flags,
            sent_micros: done_ns / 1_000,
            payload: encode_result(&recognitions),
        };
        stats.processed.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &obs {
            o.processed.inc();
            o.latency_ms
                .record(done_ns.saturating_sub(recv_ns) as f64 / 1e6);
        }
        let to = SocketAddr::from(([127, 0, 0, 1], msg.return_port));
        send_msg_obs(&socket, to, &out, &stats, obs.as_ref());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_protocol_round_trips() {
        let req = encode_fetch_req(3, 99, 40_001);
        assert_eq!(decode_fetch_req(req), Some((3, 99, 40_001)));
        assert!(decode_fetch_req(Bytes::from_static(b"bogus")).is_none());

        let kp = vision::Keypoint {
            x: 1.0,
            y: 2.0,
            scale: 1.0,
            orientation: 0.0,
            response: 0.5,
            octave: 0,
            level: 1,
        };
        let state = FrameState {
            descriptors: vec![vision::Descriptor {
                keypoint: kp,
                v: [0.1; 128],
            }],
            fisher: vec![],
            candidates: vec![1],
        };
        let rsp = encode_fetch_rsp(&state);
        assert_eq!(decode_fetch_rsp(rsp), Some(state));
    }

    #[test]
    fn control_bytes_disjoint_from_wire_magic() {
        // The first byte of a fragmented WireMsg is the top byte of
        // MAGIC (0x53); control datagrams must not collide.
        assert_ne!(CTRL_FETCH_REQ, 0x53);
        assert_ne!(CTRL_FETCH_RSP, 0x53);
    }
}
