//! The *stateful* (scAtteR-baseline) variant of the real-UDP runtime:
//! `sift` keeps each frame's descriptors in an in-memory store and
//! `matching` fetches them over a real socket round-trip — the
//! dependency loop of §3.1 running on actual datagrams.
//!
//! Differences from the stateless deployment in [`super::services`]:
//!
//! - `sift` forwards only a *stub* state (empty descriptor list), parking
//!   the real descriptors in its store under `(client, frame)` with a
//!   TTL; fetched entries linger (marked served) for one fetch-timeout so
//!   a retransmitted request whose first response was lost still succeeds;
//! - `matching`, upon receiving the `lsh` output, sends a `FetchReq`
//!   datagram to `sift` and waits; lost requests are retransmitted under
//!   deadline-bounded exponential backoff
//!   ([`StatefulOptions::fetch_retry_initial`] doubling up to
//!   [`StatefulOptions::fetch_timeout`]); `sift` answers with the
//!   descriptors (or silence if evicted/crashed), and a frame whose wait
//!   exhausts the deadline is dropped as a stale fetch;
//! - fetch responses are marked with [`wire::FLAG_CTRL`] on the wire, so
//!   the fetch-wait can route *control* fragments to its private
//!   reassembler while *frame* fragments continue through the main one —
//!   completed frames are parked for the next loop turn instead of being
//!   silently destroyed (the historical frame-swallowing bug), and a
//!   parked-queue overflow is a counted busy-ingress drop.

use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use simcore::SimRng;
use vision::keypoints::DetectorParams;

use crate::message::ServiceKind;
use crate::obs::RtSvcObs;
use crate::runtime::batch::RecvBatch;
use crate::runtime::impair::{RtSocket, SendDisposition};
use crate::runtime::services::{
    attribute_evictions, attribute_net_drop, epoch_ns, is_would_block, send_msg_obs, send_msg_wire,
    ExitReport, FaultCell, SharedCtx, SvcStats, PH_RT_COMPUTE,
};
use crate::runtime::wire::{
    self, decode_frame, decode_state, encode_result, encode_state, FrameKey, FrameState,
    Reassembler, WireMsg,
};
use crate::wirev2::{FrameKind, RxState};

/// Control datagrams of the fetch protocol ride the payload of a
/// `WireMsg` whose `step` is the *origin* service, flagged by a leading
/// control byte.
const CTRL_FETCH_REQ: u8 = 0xF1;
const CTRL_FETCH_RSP: u8 = 0xF2;

/// Frames that complete reassembly while `matching` is busy inside a
/// fetch-wait are parked for the next loop turn; past this depth the
/// arriving frame is a (counted, traced) busy-ingress drop — the same
/// semantics as the DES's drop-on-busy ingress.
const PARK_CAP: usize = 32;

/// Options for the stateful deployment.
#[derive(Debug, Clone)]
pub struct StatefulOptions {
    /// How long `matching` waits for sift's feature response in total
    /// (the retransmit deadline).
    pub fetch_timeout: Duration,
    /// First retransmit delay; doubles each retry until `fetch_timeout`.
    pub fetch_retry_initial: Duration,
    /// How long `sift` keeps un-fetched state.
    pub state_ttl: Duration,
}

impl Default for StatefulOptions {
    fn default() -> Self {
        StatefulOptions {
            fetch_timeout: Duration::from_millis(500),
            fetch_retry_initial: Duration::from_millis(25),
            state_ttl: Duration::from_secs(5),
        }
    }
}

impl StatefulOptions {
    /// How long a *served* store entry lingers before removal: long
    /// enough that a retransmitted request (response lost) still finds
    /// it, bounded by the requester's own deadline.
    fn serve_linger(&self) -> Duration {
        self.fetch_timeout
    }
}

/// Encode a fetch request for `(client, frame)` with the requester's port.
fn encode_fetch_req(client: u16, frame_no: u32, reply_port: u16) -> Bytes {
    let mut b = BytesMut::with_capacity(9);
    b.put_u8(CTRL_FETCH_REQ);
    b.put_u16(client);
    b.put_u32(frame_no);
    b.put_u16(reply_port);
    b.freeze()
}

fn decode_fetch_req(mut buf: Bytes) -> Option<(u16, u32, u16)> {
    if buf.remaining() != 9 || buf.get_u8() != CTRL_FETCH_REQ {
        return None;
    }
    Some((buf.get_u16(), buf.get_u32(), buf.get_u16()))
}

fn encode_fetch_rsp(state: &FrameState) -> Bytes {
    let body = encode_state(state);
    let mut b = BytesMut::with_capacity(1 + body.len());
    b.put_u8(CTRL_FETCH_RSP);
    b.put_slice(&body);
    b.freeze()
}

fn decode_fetch_rsp(mut buf: Bytes) -> Option<FrameState> {
    if !buf.has_remaining() || buf.get_u8() != CTRL_FETCH_RSP {
        return None;
    }
    decode_state(buf).ok()
}

/// One parked frame state in sift's store.
struct StoredState {
    state: FrameState,
    stored_at: Instant,
    /// Set when first served; the entry then lingers for
    /// [`StatefulOptions::serve_linger`] so retransmitted requests
    /// (first response lost in the network) can still be answered.
    served_at: Option<Instant>,
}

/// `sift` with a stateful feature store: detects/describes, parks the
/// state, forwards a stub, and serves fetch requests. Exits on shutdown
/// or when the fault generation moves (a kill): the store — the whole
/// point of this variant — dies with the thread.
#[allow(clippy::too_many_arguments)]
pub fn run_stateful_sift(
    socket: RtSocket,
    next: SocketAddr,
    ctx: Arc<SharedCtx>,
    stats: Arc<SvcStats>,
    shutdown: Arc<AtomicBool>,
    fault: Arc<FaultCell>,
    my_gen: u64,
    opts: StatefulOptions,
    store_size: Arc<AtomicU64>,
    tracer: trace::ThreadTracer,
    track: trace::TrackId,
    obs: Option<RtSvcObs>,
) -> ExitReport {
    let stage = ServiceKind::Sift.index() as u8;
    socket
        .set_read_timeout(Some(Duration::from_millis(20)))
        .expect("set_read_timeout");
    let mut reassembler = Reassembler::new();
    let mut rx = RxState::new();
    // One wakeup drains up to a whole batch of datagrams (single
    // recvmmsg when batching is on; one recv_from otherwise).
    let mut batch = RecvBatch::new(socket.batched());
    let mut store: HashMap<(u16, u32), StoredState> = HashMap::new();
    while !shutdown.load(Ordering::Relaxed) && fault.current() == my_gen {
        // TTL sweep: unfetched entries age out after `state_ttl`; served
        // entries are removed once their linger window closes.
        let ttl = opts.state_ttl;
        let linger = opts.serve_linger();
        store.retain(|_, s| {
            s.stored_at.elapsed() <= ttl && s.served_at.is_none_or(|at| at.elapsed() <= linger)
        });
        store_size.store(store.len() as u64, Ordering::Relaxed);
        if let Some(o) = &obs {
            o.state_store.set(store.len() as f64);
        }

        if let Err(e) = socket.recv_batch(&mut batch) {
            if is_would_block(&e) {
                attribute_evictions(&mut reassembler, ctx.epoch, &tracer, &stats, obs.as_ref());
            } else {
                stats.io_errors.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = &obs {
                    o.io_errors.inc();
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            continue;
        }
        for dgram in batch.iter() {
            // Control datagrams (fetch requests) are not fragmented.
            if !dgram.is_empty() && dgram[0] == CTRL_FETCH_REQ {
                if let Some((client, frame_no, reply_port)) =
                    decode_fetch_req(Bytes::copy_from_slice(dgram))
                {
                    if let Some(entry) = store.get_mut(&(client, frame_no)) {
                        // Serve WITHOUT removing: mark served and let the
                        // linger sweep reclaim it, so a retransmitted
                        // request after a lost response still succeeds.
                        entry.served_at.get_or_insert_with(Instant::now);
                        let rsp = WireMsg {
                            client,
                            frame_no,
                            step: ServiceKind::Matching,
                            emit_micros: 0,
                            return_port: 0,
                            // Fetch responses ride inside matching's
                            // FetchWait span; they carry identity only.
                            trace_id: ((client as u64) << 32) | frame_no as u64,
                            flags: wire::FLAG_CTRL,
                            sent_micros: 0,
                            payload: encode_fetch_rsp(&entry.state),
                        };
                        let to = SocketAddr::from(([127, 0, 0, 1], reply_port));
                        // Control traffic: a shim-eaten response is NOT a
                        // frame terminal — matching retransmits, and the
                        // frame's fate is decided there.
                        let _ = send_msg_obs(&socket, to, &rsp, &stats, obs.as_ref());
                    }
                }
                continue;
            }
            let frag = match rx.ingest(dgram) {
                Ok(frag) => frag,
                Err(e) => {
                    crate::runtime::services::attribute_ingest_error(
                        e,
                        ctx.epoch,
                        &tracer,
                        &stats,
                        obs.as_ref(),
                    );
                    continue;
                }
            };
            let completed = reassembler.offer(frag);
            attribute_evictions(&mut reassembler, ctx.epoch, &tracer, &stats, obs.as_ref());
            if let Some(o) = &obs {
                o.reassembly_pending.set(reassembler.pending_count() as f64);
            }
            let Some(msg) = completed else {
                continue;
            };
            let (msg, _meta) = match rx.finish(msg) {
                Ok(x) => x,
                Err(_) => {
                    stats.malformed.fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = &obs {
                        o.malformed.inc();
                    }
                    continue;
                }
            };
            stats.received.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = &obs {
                o.ingress.inc();
            }
            let tctx = msg.trace_ctx();
            let recv_ns = epoch_ns(ctx.epoch);
            tracer.span(
                tctx,
                track,
                stage,
                trace::Phase::IngressQueue,
                (msg.sent_micros * 1_000).min(recv_ns),
                recv_ns,
            );
            let Ok(img) = decode_frame(msg.payload.clone()) else {
                stats.malformed.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = &obs {
                    o.malformed.inc();
                }
                continue;
            };
            let pt = ctx.prof.enter(PH_RT_COMPUTE);
            let (pyr, kps) = vision::keypoints::detect(&img, &DetectorParams::default());
            let mut descriptors = vision::descriptor::describe_all(&pyr, &kps);
            descriptors.truncate(ctx.max_descriptors);
            ctx.prof.exit(PH_RT_COMPUTE, pt);
            // Park the real state; forward a stub so downstream stages can
            // still compute the Fisher/LSH path... which needs descriptors.
            // Like the real scAtteR, the compact representation (descriptors
            // for encoding) flows on, but the *frame correlation data* that
            // matching needs stays here. We model that split by forwarding
            // descriptors (compact) and parking the full state (descriptors +
            // provenance) for matching's pose step.
            let state = FrameState {
                descriptors: descriptors.clone(),
                fisher: Vec::new(),
                candidates: Vec::new(),
            };
            store.insert(
                (msg.client, msg.frame_no),
                StoredState {
                    state,
                    stored_at: Instant::now(),
                    served_at: None,
                },
            );
            store_size.store(store.len() as u64, Ordering::Relaxed);
            let done_ns = epoch_ns(ctx.epoch);
            tracer.span(tctx, track, stage, trace::Phase::Compute, recv_ns, done_ns);
            let fwd = WireMsg {
                client: msg.client,
                frame_no: msg.frame_no,
                step: ServiceKind::Encoding,
                emit_micros: msg.emit_micros,
                return_port: msg.return_port,
                trace_id: msg.trace_id,
                flags: msg.flags,
                sent_micros: done_ns.div_ceil(1_000),
                payload: encode_state(&FrameState {
                    descriptors,
                    fisher: Vec::new(),
                    candidates: Vec::new(),
                }),
            };
            stats.processed.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = &obs {
                o.processed.inc();
                o.latency_ms
                    .record(done_ns.saturating_sub(recv_ns) as f64 / 1e6);
            }
            let outcome = send_msg_wire(
                &socket,
                next,
                &fwd,
                &ctx.wire,
                FrameKind::Plain,
                0,
                &stats,
                obs.as_ref(),
            );
            attribute_net_drop(
                outcome,
                tctx,
                epoch_ns(ctx.epoch),
                &tracer,
                &stats,
                obs.as_ref(),
            );
        }
    }
    // Half-reassembled frames die with the thread; parked *store*
    // entries are NOT reported — their frames are still alive downstream
    // and will be attributed at matching (stale fetch) or complete.
    ExitReport {
        lost_frames: reassembler.pending_keys(),
    }
}

/// `matching` with the fetch loop: on lsh output, request sift's parked
/// state, wait (bounded, with retransmits), then match + pose and reply
/// to the client.
#[allow(clippy::too_many_arguments)]
pub fn run_stateful_matching(
    socket: RtSocket,
    sift_addr: SocketAddr,
    ctx: Arc<SharedCtx>,
    stats: Arc<SvcStats>,
    shutdown: Arc<AtomicBool>,
    fault: Arc<FaultCell>,
    my_gen: u64,
    opts: StatefulOptions,
    fetch_failures: Arc<AtomicU64>,
    rng_seed: u64,
    tracer: trace::ThreadTracer,
    track: trace::TrackId,
    obs: Option<RtSvcObs>,
) -> ExitReport {
    let stage = ServiceKind::Matching.index() as u8;
    socket
        .set_read_timeout(Some(Duration::from_millis(20)))
        .expect("set_read_timeout");
    let mut reassembler = Reassembler::new();
    let mut rx = RxState::new();
    let mut rng = SimRng::new(rng_seed);
    // Main-loop wakeups drain a whole batch; the fetch-wait below stays
    // single-datagram (it polls for one control response on a deadline).
    let mut batch = RecvBatch::new(socket.batched());
    let mut buf = vec![0u8; 65_536];
    let my_port = socket.local_addr().expect("local addr").port();
    // Frames that completed reassembly during a fetch-wait, awaiting
    // their own turn (the fix for the fetch-wait frame-swallowing bug).
    let mut parked: VecDeque<WireMsg> = VecDeque::new();
    // The frame whose fetch-wait a kill interrupted, for the exit report.
    let mut killed_mid_fetch: Option<FrameKey> = None;
    while !shutdown.load(Ordering::Relaxed) && fault.current() == my_gen {
        // Parked frames (arrived during an earlier fetch-wait) are
        // served before new socket traffic.
        let msg = if let Some(m) = parked.pop_front() {
            m
        } else {
            if let Err(e) = socket.recv_batch(&mut batch) {
                if is_would_block(&e) {
                    attribute_evictions(&mut reassembler, ctx.epoch, &tracer, &stats, obs.as_ref());
                } else {
                    stats.io_errors.fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = &obs {
                        o.io_errors.inc();
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                continue;
            }
            // Every datagram of the wakeup goes through the same
            // classification the single-datagram path used; completed
            // frames queue in arrival order and are served one per loop
            // turn (the first right now, the rest via `parked`).
            for dgram in batch.iter() {
                let frag = match rx.ingest(dgram) {
                    Ok(frag) => frag,
                    Err(e) => {
                        crate::runtime::services::attribute_ingest_error(
                            e,
                            ctx.epoch,
                            &tracer,
                            &stats,
                            obs.as_ref(),
                        );
                        continue;
                    }
                };
                if frag.flags & wire::FLAG_CTRL != 0 {
                    // A fetch response arriving after its wait gave up
                    // (StaleFetch already attributed). Count it — it must
                    // not enter the frame reassembler.
                    stats.late_fetch_rsp.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let Some(completed) = reassembler.offer(frag) else {
                    continue;
                };
                match rx.finish(completed) {
                    Ok((m, _meta)) => parked.push_back(m),
                    Err(_) => {
                        stats.malformed.fetch_add(1, Ordering::Relaxed);
                        if let Some(o) = &obs {
                            o.malformed.inc();
                        }
                    }
                }
            }
            attribute_evictions(&mut reassembler, ctx.epoch, &tracer, &stats, obs.as_ref());
            if let Some(o) = &obs {
                o.reassembly_pending.set(reassembler.pending_count() as f64);
            }
            let Some(m) = parked.pop_front() else {
                continue;
            };
            m
        };
        stats.received.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &obs {
            o.ingress.inc();
        }
        let tctx = msg.trace_ctx();
        let recv_ns = epoch_ns(ctx.epoch);
        tracer.span(
            tctx,
            track,
            stage,
            trace::Phase::IngressQueue,
            (msg.sent_micros * 1_000).min(recv_ns),
            recv_ns,
        );
        // Sidecar staleness filter (frames parked through a long
        // fetch-wait may have aged past the budget).
        if ctx.threshold_ms > 0.0 && msg.age_ms(ctx.epoch) > ctx.threshold_ms {
            stats.dropped_stale.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = &obs {
                o.drop_stale.inc();
            }
            tracer.terminal(
                tctx,
                epoch_ns(ctx.epoch),
                trace::FrameFate::Dropped(trace::DropReason::ThresholdFilter),
            );
            continue;
        }
        let Ok(lsh_state) = decode_state(msg.payload.clone()) else {
            stats.malformed.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = &obs {
                o.malformed.inc();
            }
            continue;
        };

        // The dependency loop, for real: ask sift for the frame state.
        // A single lost request datagram no longer costs the whole
        // timeout — the request is retransmitted under exponential
        // backoff, bounded by the fetch deadline. Meanwhile the wait
        // routes CTRL fragments to a private reassembler and parks
        // completed *frame* messages instead of destroying them.
        let req = encode_fetch_req(msg.client, msg.frame_no, my_port);
        let fetch_sent_ns = epoch_ns(ctx.epoch);
        if socket.send_to(&req, sift_addr) == SendDisposition::Error {
            stats.send_errors.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = &obs {
                o.send_errors.inc();
            }
        }
        let deadline = Instant::now() + opts.fetch_timeout;
        let mut backoff = opts.fetch_retry_initial;
        let mut next_retry = Instant::now() + backoff;
        let mut fetched: Option<FrameState> = None;
        let mut fetch_reasm = Reassembler::new();
        while fetched.is_none()
            && Instant::now() < deadline
            && !shutdown.load(Ordering::Relaxed)
            && fault.current() == my_gen
        {
            if Instant::now() >= next_retry {
                if socket.send_to(&req, sift_addr) == SendDisposition::Error {
                    stats.send_errors.fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = &obs {
                        o.send_errors.inc();
                    }
                }
                stats.fetch_retransmits.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = &obs {
                    o.fetch_retransmits.inc();
                }
                backoff = backoff.saturating_mul(2);
                next_retry = Instant::now() + backoff;
            }
            let n = match socket.recv_from(&mut buf) {
                Ok((n, _)) => n,
                Err(ref e) if is_would_block(e) => continue,
                Err(_) => {
                    stats.io_errors.fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = &obs {
                        o.io_errors.inc();
                    }
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
            };
            match rx.ingest(&buf[..n]) {
                Ok(frag) if frag.flags & wire::FLAG_CTRL != 0 => {
                    if let Some(rsp) = fetch_reasm.offer(frag) {
                        if rsp.client == msg.client && rsp.frame_no == msg.frame_no {
                            if let Some(state) = decode_fetch_rsp(rsp.payload) {
                                fetched = Some(state);
                            }
                        } else {
                            // A response for an *earlier* frame whose
                            // wait already expired.
                            stats.late_fetch_rsp.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Ok(frag) => {
                    // Frame traffic mid-wait: offer it to the MAIN
                    // reassembler and park completions. (The old code
                    // fed these to the throwaway fetch reassembler —
                    // unrelated in-flight frames vanished without a
                    // counter or a trace terminal.)
                    if let Some(m) = reassembler.offer(frag) {
                        match rx.finish(m) {
                            Ok((m, _meta)) => {
                                if parked.len() >= PARK_CAP {
                                    stats.dropped_busy.fetch_add(1, Ordering::Relaxed);
                                    if let Some(o) = &obs {
                                        o.drop_busy.inc();
                                    }
                                    tracer.terminal(
                                        m.trace_ctx(),
                                        epoch_ns(ctx.epoch),
                                        trace::FrameFate::Dropped(trace::DropReason::BusyIngress),
                                    );
                                } else {
                                    parked.push_back(m);
                                }
                            }
                            Err(_) => {
                                stats.malformed.fetch_add(1, Ordering::Relaxed);
                                if let Some(o) = &obs {
                                    o.malformed.inc();
                                }
                            }
                        }
                    }
                    attribute_evictions(&mut reassembler, ctx.epoch, &tracer, &stats, obs.as_ref());
                }
                Err(e) => {
                    crate::runtime::services::attribute_ingest_error(
                        e,
                        ctx.epoch,
                        &tracer,
                        &stats,
                        obs.as_ref(),
                    );
                }
            }
        }
        if fetched.is_none() && (shutdown.load(Ordering::Relaxed) || fault.current() != my_gen) {
            // Killed (or shut down) mid-wait: this frame's in-memory
            // state dies with the thread; the supervisor attributes it.
            killed_mid_fetch = Some(FrameKey::new(msg.client, msg.frame_no, msg.flags));
            break;
        }
        let fetch_end_ns = epoch_ns(ctx.epoch);
        tracer.span(
            tctx,
            track,
            stage,
            trace::Phase::FetchWait,
            fetch_sent_ns,
            fetch_end_ns,
        );
        let Some(state) = fetched else {
            fetch_failures.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = &obs {
                o.drop_stale_fetch.inc();
            }
            tracer.terminal(
                tctx,
                fetch_end_ns,
                trace::FrameFate::Dropped(trace::DropReason::StaleFetch),
            );
            continue;
        };

        let pt = ctx.prof.enter(PH_RT_COMPUTE);
        let mut recognitions = Vec::new();
        for &cand in &lsh_state.candidates {
            if let Some(rec) = ctx
                .db
                .match_object(cand as usize, &state.descriptors, 0.0, &mut rng)
            {
                recognitions.push((rec.name, rec.pose.corners));
            }
        }
        ctx.prof.exit(PH_RT_COMPUTE, pt);
        let done_ns = epoch_ns(ctx.epoch);
        tracer.span(
            tctx,
            track,
            stage,
            trace::Phase::Compute,
            fetch_end_ns,
            done_ns,
        );
        let out = WireMsg {
            client: msg.client,
            frame_no: msg.frame_no,
            step: ServiceKind::Primary, // terminal hop marker
            emit_micros: msg.emit_micros,
            return_port: msg.return_port,
            trace_id: msg.trace_id,
            flags: msg.flags,
            sent_micros: done_ns.div_ceil(1_000),
            payload: encode_result(&recognitions),
        };
        stats.processed.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &obs {
            o.processed.inc();
            o.latency_ms
                .record(done_ns.saturating_sub(recv_ns) as f64 / 1e6);
        }
        let to = SocketAddr::from(([127, 0, 0, 1], msg.return_port));
        let outcome = send_msg_wire(
            &socket,
            to,
            &out,
            &ctx.wire,
            FrameKind::Plain,
            0,
            &stats,
            obs.as_ref(),
        );
        attribute_net_drop(
            outcome,
            tctx,
            epoch_ns(ctx.epoch),
            &tracer,
            &stats,
            obs.as_ref(),
        );
    }
    let mut lost_frames = reassembler.pending_keys();
    lost_frames.extend(
        parked
            .iter()
            .map(|m| FrameKey::new(m.client, m.frame_no, m.flags)),
    );
    lost_frames.extend(killed_mid_fetch);
    ExitReport { lost_frames }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_protocol_round_trips() {
        let req = encode_fetch_req(3, 99, 40_001);
        assert_eq!(decode_fetch_req(req), Some((3, 99, 40_001)));
        assert!(decode_fetch_req(Bytes::from_static(b"bogus")).is_none());

        let kp = vision::Keypoint {
            x: 1.0,
            y: 2.0,
            scale: 1.0,
            orientation: 0.0,
            response: 0.5,
            octave: 0,
            level: 1,
        };
        let state = FrameState {
            descriptors: vec![vision::Descriptor {
                keypoint: kp,
                v: [0.1; 128],
            }],
            fisher: vec![],
            candidates: vec![1],
        };
        let rsp = encode_fetch_rsp(&state);
        assert_eq!(decode_fetch_rsp(rsp), Some(state));
    }

    #[test]
    fn control_bytes_disjoint_from_wire_magic() {
        // The first byte of a fragmented WireMsg is the top byte of
        // MAGIC (0x53); control datagrams must not collide.
        assert_ne!(CTRL_FETCH_REQ, 0x53);
        assert_ne!(CTRL_FETCH_RSP, 0x53);
    }

    #[test]
    fn backoff_schedule_is_deadline_bounded() {
        // 25 → 50 → 100 → 200 ms doublings stay inside a 500 ms
        // deadline: at most 4 retransmits after the initial send.
        let opts = StatefulOptions::default();
        let mut at = Duration::ZERO;
        let mut backoff = opts.fetch_retry_initial;
        let mut retries = 0;
        loop {
            at += backoff;
            if at >= opts.fetch_timeout {
                break;
            }
            retries += 1;
            backoff = backoff.saturating_mul(2);
        }
        assert_eq!(retries, 4);
    }
}
