//! Syscall-batched, shard-capable UDP I/O for the real runtime.
//!
//! One thread issuing one `recv_from` per datagram caps the data plane
//! at a few hundred thousand packets/sec no matter how cheap the
//! per-frame work is — the syscall boundary, not vision compute, is
//! the ceiling once client counts grow (ROADMAP item 2). This module
//! is the portable wrapper around the two production remedies:
//!
//! * **Syscall batching** — [`RecvBatch::recv`] drains up to
//!   [`RecvBatch::capacity`] datagrams per wakeup through one
//!   `recvmmsg(2)` call (`MSG_WAITFORONE`: block for the first
//!   datagram under the socket's read timeout, then sweep whatever
//!   else is queued), and [`send_many`] ships fragment runs through
//!   one `sendmsg(2)` + `UDP_SEGMENT` (UDP GSO: the kernel re-splits
//!   one gathered buffer at segment boundaries, paying route lookup
//!   and socket bookkeeping once per *run* instead of once per
//!   datagram) when the run is GSO-shaped — every datagram one fixed
//!   size except an optional shorter tail, exactly the shape wire
//!   fragmentation produces — and `sendmmsg(2)` otherwise.
//! * **Socket sharding** — [`bind_reuseport`] opens N sockets on one
//!   port via `SO_REUSEPORT`; the kernel hashes each client's 4-tuple
//!   to a shard, so one flow stays on one socket (reassembly and
//!   per-client state remain single-threaded) while distinct clients
//!   fan out across worker threads.
//!
//! Portability is graceful twice over: off Linux the batched entry
//! points compile down to the single-datagram std path, and on Linux a
//! kernel that refuses the syscalls (`ENOSYS`/`EPERM`, e.g. a strict
//! seccomp sandbox) flips a process-wide latch after the first refusal
//! so every later call takes the fallback without re-probing. Callers
//! never see the difference: the same `io::Result` surface, the same
//! `WouldBlock`/`TimedOut`/`Interrupted` classification.
//!
//! No `libc` crate exists in this offline workspace, so the Linux path
//! declares the tiny slice of the C ABI it needs (`recvmmsg`,
//! `sendmmsg`, `socket`/`setsockopt`/`bind`) directly — std already
//! links libc on every supported Linux target.

use std::io;
use std::net::{SocketAddr, UdpSocket};

/// Datagrams drained per wakeup by the batched service loops. Sized so
/// a full batch of worst-case datagrams (64 KiB) stays a modest fixed
/// buffer per service thread while still amortizing the syscall ~16×.
pub const BATCH_DATAGRAMS: usize = 16;

/// Largest datagram a service can receive (matches the historical
/// single-buffer size in every recv loop).
pub const MAX_DATAGRAM: usize = 65_536;

/// `true` while batched syscalls are believed to work on this host.
/// Starts `true` on Linux, permanently `false` elsewhere; flipped off
/// (never back on) when the kernel refuses a batched call.
pub fn batch_available() -> bool {
    #[cfg(target_os = "linux")]
    {
        linux::AVAILABLE.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

/// `true` while `UDP_SEGMENT` supersends are believed to work here.
/// Like [`batch_available`] this starts `true` on Linux and latches
/// off on the first kernel refusal (pre-4.18 kernels answer `EINVAL`
/// to the unknown cmsg); `send_many` then degrades to `sendmmsg`.
pub fn gso_available() -> bool {
    #[cfg(target_os = "linux")]
    {
        batch_available() && linux::gso_available()
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

/// Bind a UDP socket on `127.0.0.1:port` with `SO_REUSEPORT` set
/// *before* the bind, so further sockets can join the same port (pass
/// the first socket's real port back in for shards 1..N; pass 0 for
/// shard 0 to let the kernel pick). `Err` on non-Linux hosts and on
/// kernels that refuse the option — callers degrade to one socket.
pub fn bind_reuseport(port: u16) -> io::Result<UdpSocket> {
    #[cfg(target_os = "linux")]
    {
        linux::bind_reuseport(port)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = port;
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_REUSEPORT sharding requires Linux",
        ))
    }
}

/// Reusable receive buffers for one service loop: `capacity` slots of
/// [`MAX_DATAGRAM`] each, filled by [`RecvBatch::recv`] and read back
/// through [`RecvBatch::iter`]. Allocation happens once at spawn; the
/// hot loop only moves datagram bytes.
pub struct RecvBatch {
    bufs: Vec<Vec<u8>>,
    lens: Vec<usize>,
    count: usize,
    /// `false` = legacy mode: exactly one `recv_from` per call, the
    /// bit-compatible pre-sharding path.
    batched: bool,
}

impl RecvBatch {
    /// A batch sized for service loops. `batched = false` yields a
    /// single-slot batch whose `recv` is precisely the historical
    /// `socket.recv_from(&mut buf)` call.
    pub fn new(batched: bool) -> RecvBatch {
        Self::with_capacity(if batched { BATCH_DATAGRAMS } else { 1 }, batched)
    }

    pub fn with_capacity(capacity: usize, batched: bool) -> RecvBatch {
        let capacity = capacity.max(1);
        RecvBatch {
            bufs: (0..capacity).map(|_| vec![0u8; MAX_DATAGRAM]).collect(),
            lens: vec![0; capacity],
            count: 0,
            batched,
        }
    }

    pub fn capacity(&self) -> usize {
        self.bufs.len()
    }

    /// Drain up to `capacity` datagrams in one wakeup. Blocks for the
    /// first datagram under the socket's configured read timeout
    /// (batched: `recvmmsg` + `MSG_WAITFORONE`; fallback: one
    /// `recv_from`), never for the rest. Returns how many datagrams
    /// were filled (≥ 1), or the socket error unchanged —
    /// `WouldBlock`/`TimedOut`/`Interrupted` keep their kinds so
    /// callers classify exactly as on the single-datagram path.
    pub fn recv(&mut self, socket: &UdpSocket) -> io::Result<usize> {
        self.count = 0;
        #[cfg(target_os = "linux")]
        if self.batched && batch_available() {
            match linux::recvmmsg_waitforone(socket, &mut self.bufs, &mut self.lens) {
                Ok(n) => {
                    self.count = n;
                    return Ok(n);
                }
                Err(e) if linux::is_unsupported(&e) => {
                    linux::disable("recvmmsg", &e);
                    // fall through to the single-datagram path
                }
                Err(e) => return Err(e),
            }
        }
        let (n, _from) = socket.recv_from(&mut self.bufs[0])?;
        self.lens[0] = n;
        self.count = 1;
        Ok(1)
    }

    /// The datagrams the last [`RecvBatch::recv`] filled, in arrival
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.bufs
            .iter()
            .zip(&self.lens)
            .take(self.count)
            .map(|(b, &n)| &b[..n])
    }
}

/// How many of `datagrams` failed at the OS send boundary.
///
/// Three tiers, best first: a GSO-shaped run (all datagrams one fixed
/// size except an optional shorter last) goes out as `sendmsg` +
/// `UDP_SEGMENT` supersends — the receiver still sees the individual
/// datagrams because the kernel splits the gathered buffer back at
/// exactly our fragment boundaries; mixed-size runs use `sendmmsg`
/// (partial progress retried from the first unsent datagram, so a
/// transient error costs exactly one datagram); and hosts without
/// either fall back to the sequential `send_to` loop. Error
/// granularity is per-datagram on the first two tiers too — a failed
/// supersend counts every datagram it carried.
pub fn send_many(socket: &UdpSocket, datagrams: &[&[u8]], to: SocketAddr) -> usize {
    #[cfg(target_os = "linux")]
    if datagrams.len() > 1 && batch_available() {
        if linux::gso_available() {
            if let Some(seg) = linux::gso_run_segment(datagrams) {
                match linux::send_gso_all(socket, datagrams, to, seg) {
                    Ok(errors) => return errors,
                    Err(e) => linux::disable_gso(&e),
                }
            }
        }
        match linux::sendmmsg_all(socket, datagrams, to) {
            Ok(errors) => return errors,
            Err(e) => linux::disable("sendmmsg", &e),
        }
    }
    let mut errors = 0usize;
    for d in datagrams {
        if socket.send_to(d, to).is_err() {
            errors += 1;
        }
    }
    errors
}

#[cfg(target_os = "linux")]
mod linux {
    use std::ffi::{c_int, c_uint, c_void};
    use std::io;
    use std::net::{SocketAddr, UdpSocket};
    use std::os::fd::{AsRawFd, FromRawFd};
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static AVAILABLE: AtomicBool = AtomicBool::new(true);

    /// Permanently drop to the single-datagram path; announced once.
    pub fn disable(which: &str, err: &io::Error) {
        if AVAILABLE.swap(false, Ordering::Relaxed) {
            eprintln!("scatter runtime: {which} unavailable ({err}); using single-datagram I/O");
        }
    }

    /// Refusals that mean "this kernel/sandbox will never serve the
    /// batched call" — latch off. Anything else (EAGAIN, EINTR, real
    /// socket errors) is the caller's business.
    pub fn is_unsupported(e: &io::Error) -> bool {
        matches!(
            e.raw_os_error(),
            Some(ENOSYS) | Some(EPERM) | Some(EOPNOTSUPP)
        )
    }

    pub static GSO_AVAILABLE: AtomicBool = AtomicBool::new(true);

    pub fn gso_available() -> bool {
        GSO_AVAILABLE.load(Ordering::Relaxed)
    }

    /// Drop to `sendmmsg` for every later run; announced once. GSO
    /// refusals are broader than the plain-syscall set: an old kernel
    /// rejects the unknown `UDP_SEGMENT` cmsg with `EINVAL`, a kernel
    /// built without GSO answers `ENOPROTOOPT`/`EOPNOTSUPP`.
    pub fn disable_gso(err: &io::Error) {
        if GSO_AVAILABLE.swap(false, Ordering::Relaxed) {
            eprintln!("scatter runtime: UDP_SEGMENT unavailable ({err}); using sendmmsg");
        }
    }

    fn is_gso_unsupported(e: &io::Error) -> bool {
        matches!(
            e.raw_os_error(),
            Some(ENOSYS) | Some(EPERM) | Some(EOPNOTSUPP) | Some(EINVAL) | Some(ENOPROTOOPT)
        )
    }

    const ENOSYS: i32 = 38;
    const EPERM: i32 = 1;
    const EOPNOTSUPP: i32 = 95;
    const EINVAL: i32 = 22;
    const ENOPROTOOPT: i32 = 92;

    const SOL_SOCKET: c_int = 1;
    const SOL_UDP: c_int = 17;
    const UDP_SEGMENT: c_int = 103;
    const SO_REUSEPORT: c_int = 15;
    /// Kernel cap on segments per GSO supersend (`UDP_MAX_SEGMENTS`).
    const GSO_MAX_SEGMENTS: usize = 64;
    /// Keep each supersend's gathered payload under the 65,507-byte
    /// maximum UDP datagram the kernel segments from.
    const GSO_MAX_BYTES: usize = 65_000;
    const AF_INET: c_int = 2;
    const SOCK_DGRAM: c_int = 2;
    const SOCK_CLOEXEC: c_int = 0o2000000;
    const MSG_WAITFORONE: c_int = 0x10000;

    #[repr(C)]
    struct IoVec {
        base: *mut c_void,
        len: usize,
    }

    #[repr(C)]
    struct MsgHdr {
        name: *mut c_void,
        namelen: c_uint,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut c_void,
        controllen: usize,
        flags: c_int,
    }

    #[repr(C)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: c_uint,
    }

    /// `struct sockaddr_in`: port and address in network byte order.
    #[repr(C)]
    struct SockAddrIn {
        family: u16,
        port: u16,
        addr: u32,
        zero: [u8; 8],
    }

    /// `struct cmsghdr` followed by the 16-bit `UDP_SEGMENT` value;
    /// `_pad` brings the control buffer to `CMSG_SPACE` alignment.
    #[repr(C)]
    struct SegCtrl {
        cmsg_len: usize,
        cmsg_level: c_int,
        cmsg_type: c_int,
        gso_size: u16,
        _pad: [u8; 6],
    }

    extern "C" {
        fn sendmsg(fd: c_int, msg: *const MsgHdr, flags: c_int) -> isize;
        fn recvmmsg(
            fd: c_int,
            vec: *mut MMsgHdr,
            vlen: c_uint,
            flags: c_int,
            timeout: *mut c_void,
        ) -> c_int;
        fn sendmmsg(fd: c_int, vec: *mut MMsgHdr, vlen: c_uint, flags: c_int) -> c_int;
        fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        fn setsockopt(
            fd: c_int,
            level: c_int,
            name: c_int,
            value: *const c_void,
            len: c_uint,
        ) -> c_int;
        fn bind(fd: c_int, addr: *const c_void, len: c_uint) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    pub fn bind_reuseport(port: u16) -> io::Result<UdpSocket> {
        unsafe {
            let fd = socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            let on: c_int = 1;
            if setsockopt(
                fd,
                SOL_SOCKET,
                SO_REUSEPORT,
                &on as *const c_int as *const c_void,
                std::mem::size_of::<c_int>() as c_uint,
            ) < 0
            {
                let e = io::Error::last_os_error();
                close(fd);
                return Err(e);
            }
            let addr = SockAddrIn {
                family: AF_INET as u16,
                port: port.to_be(),
                addr: u32::from_ne_bytes([127, 0, 0, 1]),
                zero: [0; 8],
            };
            if bind(
                fd,
                &addr as *const SockAddrIn as *const c_void,
                std::mem::size_of::<SockAddrIn>() as c_uint,
            ) < 0
            {
                let e = io::Error::last_os_error();
                close(fd);
                return Err(e);
            }
            Ok(UdpSocket::from_raw_fd(fd))
        }
    }

    /// One `recvmmsg` wakeup: block for the first datagram (honouring
    /// `SO_RCVTIMEO`), then take whatever else is queued, up to the
    /// batch capacity. Sender addresses are not collected — no recv
    /// site in the runtime reads them.
    pub fn recvmmsg_waitforone(
        socket: &UdpSocket,
        bufs: &mut [Vec<u8>],
        lens: &mut [usize],
    ) -> io::Result<usize> {
        let mut iovs: Vec<IoVec> = bufs
            .iter_mut()
            .map(|b| IoVec {
                base: b.as_mut_ptr() as *mut c_void,
                len: b.len(),
            })
            .collect();
        let mut msgs: Vec<MMsgHdr> = iovs
            .iter_mut()
            .map(|iov| MMsgHdr {
                hdr: MsgHdr {
                    name: std::ptr::null_mut(),
                    namelen: 0,
                    iov,
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            })
            .collect();
        let n = unsafe {
            recvmmsg(
                socket.as_raw_fd(),
                msgs.as_mut_ptr(),
                msgs.len() as c_uint,
                MSG_WAITFORONE,
                std::ptr::null_mut(),
            )
        };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        for (i, m) in msgs.iter().take(n as usize).enumerate() {
            lens[i] = m.len as usize;
        }
        Ok(n as usize)
    }

    /// `Some(segment size)` when the run is GSO-shaped: at least two
    /// datagrams, every one exactly the first's size except an
    /// optional shorter last — precisely how wire fragmentation cuts
    /// a frame, so the kernel's re-split at `seg` boundaries reproduces
    /// the input datagrams bit-for-bit on the receiver.
    pub fn gso_run_segment(datagrams: &[&[u8]]) -> Option<usize> {
        let (&first, rest) = datagrams.split_first()?;
        let seg = first.len();
        // Two segments must fit one supersend or GSO buys nothing.
        if rest.is_empty() || seg == 0 || seg * 2 > GSO_MAX_BYTES {
            return None;
        }
        let (&last, middle) = rest.split_last()?;
        if middle.iter().any(|d| d.len() != seg) || last.len() > seg || last.is_empty() {
            return None;
        }
        Some(seg)
    }

    /// Ship a GSO-shaped run as `sendmsg` + `UDP_SEGMENT` supersends:
    /// each syscall gathers up to [`GSO_MAX_SEGMENTS`] datagrams into
    /// one iovec array and the kernel splits them back apart at `seg`
    /// boundaries on the way out. Returns `Ok(per-datagram error
    /// count)`; `Err` only when the *first* supersend is refused with
    /// an "unsupported" errno and nothing went out — the caller
    /// latches GSO off and replays the whole run via `sendmmsg`.
    pub fn send_gso_all(
        socket: &UdpSocket,
        datagrams: &[&[u8]],
        to: SocketAddr,
        seg: usize,
    ) -> io::Result<usize> {
        let SocketAddr::V4(v4) = to else {
            return Err(io::Error::from_raw_os_error(EOPNOTSUPP));
        };
        let addr = SockAddrIn {
            family: AF_INET as u16,
            port: v4.port().to_be(),
            addr: u32::from_ne_bytes(v4.ip().octets()),
            zero: [0; 8],
        };
        let ctrl = SegCtrl {
            // CMSG_LEN(sizeof(u16)): header + value, unpadded.
            cmsg_len: std::mem::size_of::<usize>() + 2 * std::mem::size_of::<c_int>() + 2,
            cmsg_level: SOL_UDP,
            cmsg_type: UDP_SEGMENT,
            gso_size: seg as u16,
            _pad: [0; 6],
        };
        let fd = socket.as_raw_fd();
        let per_call = GSO_MAX_SEGMENTS.min(GSO_MAX_BYTES / seg).max(1);
        let mut sent_any = false;
        let mut errors = 0usize;
        for chunk in datagrams.chunks(per_call) {
            let mut iovs: Vec<IoVec> = chunk
                .iter()
                .map(|d| IoVec {
                    base: d.as_ptr() as *mut c_void,
                    len: d.len(),
                })
                .collect();
            // A single trailing short datagram is its own (unsegmented)
            // supersend; the cmsg is harmless either way.
            let msg = MsgHdr {
                name: &addr as *const SockAddrIn as *mut c_void,
                namelen: std::mem::size_of::<SockAddrIn>() as c_uint,
                iov: iovs.as_mut_ptr(),
                iovlen: iovs.len(),
                control: &ctrl as *const SegCtrl as *mut c_void,
                controllen: std::mem::size_of::<SegCtrl>(),
                flags: 0,
            };
            let n = unsafe { sendmsg(fd, &msg, 0) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if !sent_any && is_gso_unsupported(&e) {
                    return Err(e);
                }
                // Whole supersend lost: per-datagram accounting, like
                // the sequential loop failing `chunk.len()` times.
                errors += chunk.len();
            } else {
                sent_any = true;
            }
        }
        Ok(errors)
    }

    /// Ship every datagram via `sendmmsg`, resuming after partial
    /// progress. Returns `Ok(per-datagram error count)`; `Err` only for
    /// refusals that should latch the batched path off entirely.
    pub fn sendmmsg_all(
        socket: &UdpSocket,
        datagrams: &[&[u8]],
        to: SocketAddr,
    ) -> io::Result<usize> {
        let SocketAddr::V4(v4) = to else {
            return Err(io::Error::from_raw_os_error(EOPNOTSUPP));
        };
        let addr = SockAddrIn {
            family: AF_INET as u16,
            port: v4.port().to_be(),
            addr: u32::from_ne_bytes(v4.ip().octets()),
            zero: [0; 8],
        };
        let mut iovs: Vec<IoVec> = datagrams
            .iter()
            .map(|d| IoVec {
                base: d.as_ptr() as *mut c_void,
                len: d.len(),
            })
            .collect();
        let mut msgs: Vec<MMsgHdr> = iovs
            .iter_mut()
            .map(|iov| MMsgHdr {
                hdr: MsgHdr {
                    name: &addr as *const SockAddrIn as *mut c_void,
                    namelen: std::mem::size_of::<SockAddrIn>() as c_uint,
                    iov,
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            })
            .collect();
        let fd = socket.as_raw_fd();
        let mut sent = 0usize;
        let mut errors = 0usize;
        while sent < msgs.len() {
            let left = &mut msgs[sent..];
            let n = unsafe { sendmmsg(fd, left.as_mut_ptr(), left.len() as c_uint, 0) };
            if n > 0 {
                sent += n as usize;
            } else {
                let e = io::Error::last_os_error();
                if is_unsupported(&e) && sent == 0 && errors == 0 {
                    return Err(e);
                }
                // The datagram at the head of the window failed: count
                // it and move on, like the sequential loop would.
                errors += 1;
                sent += 1;
            }
        }
        Ok(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn single_mode_receives_one_datagram_per_call() {
        let rx = UdpSocket::bind("127.0.0.1:0").expect("bind");
        rx.set_read_timeout(Some(Duration::from_millis(200)))
            .expect("timeout");
        let to = rx.local_addr().expect("addr");
        let tx = UdpSocket::bind("127.0.0.1:0").expect("bind");
        tx.send_to(b"one", to).expect("send");
        tx.send_to(b"two", to).expect("send");
        let mut batch = RecvBatch::new(false);
        assert_eq!(batch.capacity(), 1);
        assert_eq!(batch.recv(&rx).expect("recv"), 1);
        assert_eq!(batch.iter().next(), Some(&b"one"[..]));
        assert_eq!(batch.recv(&rx).expect("recv"), 1);
        assert_eq!(batch.iter().next(), Some(&b"two"[..]));
    }

    #[test]
    fn batched_mode_drains_queued_datagrams_in_one_wakeup() {
        let rx = UdpSocket::bind("127.0.0.1:0").expect("bind");
        rx.set_read_timeout(Some(Duration::from_millis(500)))
            .expect("timeout");
        let to = rx.local_addr().expect("addr");
        let tx = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 8]).collect();
        for p in &payloads {
            tx.send_to(p, to).expect("send");
        }
        // Give loopback delivery a moment so the queue really holds all
        // five before the drain.
        std::thread::sleep(Duration::from_millis(30));
        let mut batch = RecvBatch::new(true);
        let mut got: Vec<Vec<u8>> = Vec::new();
        while got.len() < payloads.len() {
            let n = batch.recv(&rx).expect("recv");
            got.extend(batch.iter().map(<[u8]>::to_vec));
            if batch_available() {
                assert_eq!(n, payloads.len(), "one wakeup should drain the queue");
            }
        }
        assert_eq!(got, payloads, "arrival order and bytes preserved");
    }

    #[test]
    fn batched_recv_times_out_like_single() {
        let rx = UdpSocket::bind("127.0.0.1:0").expect("bind");
        rx.set_read_timeout(Some(Duration::from_millis(30)))
            .expect("timeout");
        let mut batch = RecvBatch::new(true);
        let err = batch.recv(&rx).expect_err("empty socket");
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "unexpected kind: {err:?}"
        );
    }

    #[test]
    fn send_many_delivers_every_datagram() {
        let rx = UdpSocket::bind("127.0.0.1:0").expect("bind");
        rx.set_read_timeout(Some(Duration::from_millis(300)))
            .expect("timeout");
        let to = rx.local_addr().expect("addr");
        let tx = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let datagrams: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i + 1; 16]).collect();
        let views: Vec<&[u8]> = datagrams.iter().map(Vec::as_slice).collect();
        assert_eq!(send_many(&tx, &views, to), 0, "no send errors on loopback");
        let mut buf = [0u8; 64];
        for expect in &datagrams {
            let (n, _) = rx.recv_from(&mut buf).expect("datagram");
            assert_eq!(&buf[..n], &expect[..]);
        }
    }

    /// A GSO-shaped run — equal-size fragments plus a shorter tail,
    /// the wire-fragmentation shape — must reach the receiver as the
    /// exact input datagrams: the kernel's re-split at segment
    /// boundaries has to reproduce our fragment boundaries.
    #[test]
    fn gso_shaped_run_delivers_exact_datagrams() {
        let rx = UdpSocket::bind("127.0.0.1:0").expect("bind");
        rx.set_read_timeout(Some(Duration::from_millis(300)))
            .expect("timeout");
        let to = rx.local_addr().expect("addr");
        let tx = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let mut datagrams: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i + 1; 512]).collect();
        datagrams.push(vec![0xEE; 37]); // short tail
        let views: Vec<&[u8]> = datagrams.iter().map(Vec::as_slice).collect();
        assert_eq!(send_many(&tx, &views, to), 0, "no send errors on loopback");
        let mut buf = [0u8; 2048];
        for expect in &datagrams {
            let (n, _) = rx.recv_from(&mut buf).expect("datagram");
            assert_eq!(&buf[..n], &expect[..], "boundaries must survive GSO");
        }
    }

    /// Mixed-size runs are not GSO-shaped and must still arrive intact
    /// via the `sendmmsg` tier.
    #[test]
    fn mixed_size_run_falls_back_to_sendmmsg() {
        let rx = UdpSocket::bind("127.0.0.1:0").expect("bind");
        rx.set_read_timeout(Some(Duration::from_millis(300)))
            .expect("timeout");
        let to = rx.local_addr().expect("addr");
        let tx = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let datagrams: Vec<Vec<u8>> = vec![vec![1; 100], vec![2; 300], vec![3; 50]];
        let views: Vec<&[u8]> = datagrams.iter().map(Vec::as_slice).collect();
        assert_eq!(send_many(&tx, &views, to), 0);
        let mut buf = [0u8; 1024];
        for expect in &datagrams {
            let (n, _) = rx.recv_from(&mut buf).expect("datagram");
            assert_eq!(&buf[..n], &expect[..]);
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn gso_run_segment_classifies_shapes() {
        use super::linux::gso_run_segment;
        let a = vec![0u8; 512];
        let tail = vec![0u8; 100];
        let big = vec![0u8; 700];
        assert_eq!(gso_run_segment(&[&a, &a, &a]), Some(512));
        assert_eq!(gso_run_segment(&[&a, &a, &tail]), Some(512));
        assert_eq!(gso_run_segment(&[&a]), None, "one datagram: no gain");
        assert_eq!(gso_run_segment(&[&a, &big]), None, "growing tail");
        assert_eq!(gso_run_segment(&[&a, &tail, &a]), None, "short middle");
        assert_eq!(gso_run_segment(&[&a, &a, &[]]), None, "empty tail");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reuseport_shards_share_one_port() {
        let first = bind_reuseport(0).expect("shard 0");
        let port = first.local_addr().expect("addr").port();
        let second = bind_reuseport(port).expect("shard 1 joins the port");
        assert_eq!(second.local_addr().expect("addr").port(), port);
        // Plain bind without SO_REUSEPORT must still conflict.
        assert!(UdpSocket::bind(("127.0.0.1", port)).is_err());
    }
}
