//! Per-instance service runtime state shared by both pipeline modes.
//!
//! scAtteR semantics: one frame at a time, arrivals at a busy service are
//! dropped, `sift` keeps per-frame state until `matching` fetches it (or
//! a timeout evicts it). scAtteR++ semantics: a [`Sidecar`] queues and
//! filters arrivals; `sift` keeps no state.

use std::collections::{HashMap, VecDeque};

use metrics::{Summary, TimeSeries};
use simcore::{SimDuration, SimTime};

use crate::message::{FrameMsg, ServiceKind};
use crate::sidecar::Sidecar;

/// A stored `sift` state entry awaiting `matching`'s fetch.
#[derive(Debug, Clone)]
pub struct StateEntry {
    pub stored_at: SimTime,
    pub bytes: usize,
}

/// Drop/loss accounting per service instance, split by cause.
#[derive(Debug, Clone, Copy, Default)]
pub struct DropCounters {
    /// scAtteR: arrived while the service was busy.
    pub busy: u64,
    /// scAtteR++: filtered by the sidecar staleness threshold.
    pub stale: u64,
    /// scAtteR: `matching` gave up waiting for `sift`'s features.
    pub fetch_timeout: u64,
    /// Requests that arrived while the instance was crashed/restarting.
    pub down: u64,
}

impl DropCounters {
    pub fn total(&self) -> u64 {
        self.busy + self.stale + self.fetch_timeout + self.down
    }
}

/// Runtime state of one deployed service instance.
pub struct SvcRuntime {
    pub kind: ServiceKind,
    /// Replica ordinal within its service.
    pub replica: usize,
    /// Machine index in the cluster.
    pub machine: usize,
    /// Busy until the in-flight frame completes (scAtteR gate; also used
    /// in scAtteR++ to know when to pull the next queued frame).
    pub busy: bool,
    /// Crashed: down until the orchestrator's restart completes.
    pub down_until: Option<SimTime>,
    /// In-flight execution generation — incremented on crash so stale
    /// completion events from before the crash are ignored.
    pub generation: u64,
    /// Sidecar queue (scAtteR++ only).
    pub sidecar: Option<Sidecar>,
    /// `sift` state store (scAtteR only), keyed by (client, frame).
    pub state_store: HashMap<(usize, u64), StateEntry>,
    /// Peak state-store footprint in bytes (memory reporting).
    pub peak_state_bytes: usize,
    /// Frames that arrived at this instance's ingress (fig. 8's per-
    /// service ingress FPS), with value 1.0 per arrival.
    pub ingress: TimeSeries,
    /// Drops at this instance over time (value 1.0 per drop).
    pub drops_over_time: TimeSeries,
    pub drops: DropCounters,
    /// Per-frame service latency (queue/GPU wait + compute), ms.
    pub service_latency_ms: Summary,
    /// EWMA of observed service latency, feeding the sidecar projection.
    pub ewma_service_ms: f64,
    /// Completion events with value = wall processing ms — windowed busy
    /// fraction for the autoscaler's hardware-style signal.
    pub proc_series: TimeSeries,
    /// Completed frame executions.
    pub processed: u64,
    /// `sift` only: feature-fetch requests served / dropped-while-busy.
    pub fetch_served: u64,
    pub fetch_dropped: u64,
    /// `matching` only: frame parked while its feature fetch is in
    /// flight, plus the timeout event to cancel on success and the
    /// instant the fetch was sent (start of the frame's fetch-wait span).
    pub pending_fetch: Option<(FrameMsg, simcore::EventId, SimTime)>,
    /// `sift` only: fetch requests waiting in the UDP socket buffer while
    /// the service is busy — tiny datagrams are buffered by the kernel,
    /// unlike full frames which the service-level drop policy rejects.
    /// Entries are `(matching slot, frame key)`.
    pub fetch_queue: VecDeque<(usize, (usize, u64))>,
    /// Streaming-metrics mode (DESIGN.md §14): arrivals/drops increment
    /// the counters below instead of appending to `ingress`/
    /// `drops_over_time`. Those two series grow by one entry per emitted
    /// frame — ≈48 MB per simulated second each at 100k clients — and
    /// are the dominant report memory at scale. `None` keeps the exact
    /// series (the legacy byte-identical path).
    pub streaming_window: Option<(SimTime, SimTime)>,
    /// Total ingress arrivals (whole run).
    pub ingress_total: u64,
    /// Ingress arrivals inside the measurement window `[start, end)`.
    pub ingress_in_window: u64,
    /// Drop *events* inside the window (one per `record_drop` call,
    /// mirroring `drops_over_time.window_count`).
    pub drop_events_in_window: u64,
}

impl SvcRuntime {
    pub fn new(
        kind: ServiceKind,
        replica: usize,
        machine: usize,
        sidecar: Option<Sidecar>,
    ) -> Self {
        SvcRuntime {
            kind,
            replica,
            machine,
            busy: false,
            down_until: None,
            generation: 0,
            sidecar,
            state_store: HashMap::new(),
            peak_state_bytes: 0,
            ingress: TimeSeries::new(),
            drops_over_time: TimeSeries::new(),
            drops: DropCounters::default(),
            service_latency_ms: Summary::new(),
            ewma_service_ms: 0.0,
            proc_series: TimeSeries::new(),
            processed: 0,
            fetch_served: 0,
            fetch_dropped: 0,
            pending_fetch: None,
            fetch_queue: VecDeque::new(),
            streaming_window: None,
            ingress_total: 0,
            ingress_in_window: 0,
            drop_events_in_window: 0,
        }
    }

    /// Record an ingress arrival.
    pub fn record_ingress(&mut self, now: SimTime) {
        match self.streaming_window {
            None => self.ingress.push(now, 1.0),
            Some((start, end)) => {
                self.ingress_total += 1;
                if now >= start && now < end {
                    self.ingress_in_window += 1;
                }
            }
        }
    }

    pub fn record_drop(&mut self, now: SimTime) {
        match self.streaming_window {
            None => self.drops_over_time.push(now, 1.0),
            Some((start, end)) => {
                if now >= start && now < end {
                    self.drop_events_in_window += 1;
                }
            }
        }
    }

    /// Current `sift` state-store footprint in bytes.
    pub fn state_bytes(&self) -> usize {
        self.state_store.values().map(|e| e.bytes).sum()
    }

    /// Store a state entry, tracking the peak footprint.
    pub fn store_state(&mut self, key: (usize, u64), entry: StateEntry) {
        self.state_store.insert(key, entry);
        self.peak_state_bytes = self.peak_state_bytes.max(self.state_bytes());
    }

    /// Evict entries older than `timeout` at `now`; returns evicted count.
    pub fn evict_stale_state(&mut self, now: SimTime, timeout: SimDuration) -> usize {
        let before = self.state_store.len();
        self.state_store
            .retain(|_, e| now.saturating_since(e.stored_at) <= timeout);
        before - self.state_store.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::NodeId;

    fn rt() -> SvcRuntime {
        SvcRuntime::new(ServiceKind::Sift, 0, 0, None)
    }

    #[test]
    fn state_store_tracks_bytes_and_peak() {
        let mut s = rt();
        s.store_state(
            (0, 1),
            StateEntry {
                stored_at: SimTime::ZERO,
                bytes: 100,
            },
        );
        s.store_state(
            (0, 2),
            StateEntry {
                stored_at: SimTime::ZERO,
                bytes: 50,
            },
        );
        assert_eq!(s.state_bytes(), 150);
        s.state_store.remove(&(0, 1));
        assert_eq!(s.state_bytes(), 50);
        assert_eq!(s.peak_state_bytes, 150, "peak survives removal");
    }

    #[test]
    fn eviction_respects_timeout() {
        let mut s = rt();
        s.store_state(
            (0, 1),
            StateEntry {
                stored_at: SimTime::from_millis(0),
                bytes: 10,
            },
        );
        s.store_state(
            (0, 2),
            StateEntry {
                stored_at: SimTime::from_millis(900),
                bytes: 10,
            },
        );
        let evicted =
            s.evict_stale_state(SimTime::from_millis(1000), SimDuration::from_millis(500));
        assert_eq!(evicted, 1);
        assert!(s.state_store.contains_key(&(0, 2)));
    }

    #[test]
    fn drop_counters_total() {
        let d = DropCounters {
            busy: 2,
            stale: 3,
            fetch_timeout: 4,
            down: 1,
        };
        assert_eq!(d.total(), 10);
    }

    #[test]
    fn ingress_series_records_arrivals() {
        let mut s = rt();
        s.record_ingress(SimTime::from_millis(10));
        s.record_ingress(SimTime::from_millis(20));
        assert_eq!(s.ingress.len(), 2);
        let _ = FrameMsg::new(0, 0, NodeId(0), SimTime::ZERO, 1);
    }
}
