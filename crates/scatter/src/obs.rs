//! Live telemetry wiring for the DES plane.
//!
//! The simulation's own accounting ([`crate::report::RunReport`]) is
//! computed *post hoc* from exact per-event state. This module is the
//! *live* counterpart: the same call sites also record into a
//! [`telemetry::Registry`] — counters for ingress/processed/drops (the
//! drop reasons mirror [`trace::DropReason::as_str`]), a log-linear
//! histogram per service and for end-to-end latency, and 1 Hz gauges for
//! queue depth, resident memory, and machine CPU/GPU utilization.
//!
//! The wiring is a pure observer: it draws no randomness, schedules no
//! events, and never feeds back into the simulation, so a telemetered
//! run is bit-for-bit identical to an untelemetered one. When the world
//! is built without a registry (`run_experiment`), the `Option` is
//! `None` and every call site is a branch-not-taken.

use telemetry::{Counter, Gauge, Histogram, Labels, Registry, SloConfig, SloEvent, SloTracker};

/// Per-slot (service-instance) handles, parallel to
/// `PipelineWorld::services`.
pub struct SlotObs {
    pub ingress: Counter,
    pub processed: Counter,
    pub latency_ms: Histogram,
    pub queue_depth: Gauge,
    pub memory_gb: Gauge,
    /// Drops by reason, mirroring the report's `DropCounters` split and
    /// named by `trace::DropReason::as_str`.
    pub drop_busy: Counter,
    pub drop_threshold: Counter,
    pub drop_stale_fetch: Counter,
    pub drop_crash: Counter,
    pub fetch_served: Counter,
    pub fetch_dropped: Counter,
}

/// All DES-plane telemetry state: the registry, per-slot and per-machine
/// handles, pipeline-level series, and the SLO tracker.
pub struct DesObs {
    pub registry: Registry,
    pub slots: Vec<SlotObs>,
    pub machine_mem: Vec<Gauge>,
    pub machine_cpu: Vec<Gauge>,
    pub machine_gpu: Vec<Gauge>,
    pub frames_emitted: Counter,
    pub frames_completed: Counter,
    pub e2e_ms: Histogram,
    /// Datagrams the network ate, by reason (netem vs fragment loss).
    pub net_drop_netem: Counter,
    pub net_drop_fragment: Counter,
    pub slo: SloTracker,
    pub slo_events: Vec<SloEvent>,
    /// `(sim time s, scrape)` taken once per window in `sample_metrics`.
    pub window_snapshots: Vec<(f64, telemetry::Snapshot)>,
    /// Seconds between windowed scrapes.
    pub window_secs: u64,
    next_window_s: u64,
}

/// Execution-plane label value for the simulation.
pub const PLANE: &str = "des";

fn slot_labels(kind: &'static str, replica: usize, machine: &str) -> Labels {
    Labels::service(kind)
        .with_replica(replica as u32)
        .with_machine(machine)
        .with_plane(PLANE)
}

impl DesObs {
    /// Build the pipeline-level handles; per-slot and per-machine
    /// handles are registered as the world materializes them.
    pub fn new(registry: Registry, machines: &[String]) -> DesObs {
        let plane = Labels::EMPTY.with_plane(PLANE);
        let frames_emitted = registry.counter(
            "scatter_frames_emitted_total",
            "Frames emitted by all clients",
            plane.clone(),
        );
        let frames_completed = registry.counter(
            "scatter_frames_completed_total",
            "Frames whose result reached the client",
            plane.clone(),
        );
        let e2e_ms = registry.histogram(
            "scatter_e2e_latency_ms",
            "End-to-end frame latency (emission to result delivery), ms",
            plane.clone(),
        );
        let net_drop_netem = registry.counter(
            "scatter_net_drops_total",
            "Frame datagrams lost in the network, by reason",
            plane.clone().with_reason("netem-loss"),
        );
        let net_drop_fragment = registry.counter(
            "scatter_net_drops_total",
            "Frame datagrams lost in the network, by reason",
            plane.clone().with_reason("fragment-loss"),
        );
        let machine_mem = machines
            .iter()
            .map(|m| {
                registry.gauge(
                    "scatter_machine_memory_gb",
                    "Resident memory per machine, GB (1 Hz sample)",
                    Labels::EMPTY.with_machine(m.clone()).with_plane(PLANE),
                )
            })
            .collect();
        let machine_cpu = machines
            .iter()
            .map(|m| {
                registry.gauge(
                    "scatter_machine_cpu_pct",
                    "CPU utilization per machine, percent",
                    Labels::EMPTY.with_machine(m.clone()).with_plane(PLANE),
                )
            })
            .collect();
        let machine_gpu = machines
            .iter()
            .map(|m| {
                registry.gauge(
                    "scatter_machine_gpu_pct",
                    "GPU utilization per machine, percent",
                    Labels::EMPTY.with_machine(m.clone()).with_plane(PLANE),
                )
            })
            .collect();
        DesObs {
            registry,
            slots: Vec::new(),
            machine_mem,
            machine_cpu,
            machine_gpu,
            frames_emitted,
            frames_completed,
            e2e_ms,
            net_drop_netem,
            net_drop_fragment,
            slo: SloTracker::new(SloConfig::default()),
            slo_events: Vec::new(),
            window_snapshots: Vec::new(),
            window_secs: 5,
            next_window_s: 5,
        }
    }

    /// Register handles for one service slot. Called once per deployed
    /// instance (including mid-run scale-outs); on migration the slot is
    /// re-registered so subsequent samples land on the new machine's
    /// series.
    pub fn register_slot(&mut self, kind: &'static str, replica: usize, machine: &str) -> SlotObs {
        let r = &self.registry;
        let l = || slot_labels(kind, replica, machine);
        let drop = |reason: &'static str| {
            r.counter(
                "scatter_drops_total",
                "Frames dropped at a service instance, by reason",
                l().with_reason(reason),
            )
        };
        SlotObs {
            ingress: r.counter(
                "scatter_service_ingress_total",
                "Frames that reached this instance's ingress",
                l(),
            ),
            processed: r.counter(
                "scatter_service_processed_total",
                "Frame executions completed by this instance",
                l(),
            ),
            latency_ms: r.histogram(
                "scatter_service_latency_ms",
                "Per-frame service latency (wait + compute), ms",
                l(),
            ),
            queue_depth: r.gauge(
                "scatter_queue_depth",
                "Sidecar queue depth (scAtteR++) or pending fetches (sift)",
                l(),
            ),
            memory_gb: r.gauge(
                "scatter_service_memory_gb",
                "Resident memory of this instance, GB (1 Hz sample)",
                l(),
            ),
            drop_busy: drop("busy-ingress"),
            drop_threshold: drop("threshold-filter"),
            drop_stale_fetch: drop("stale-fetch"),
            drop_crash: drop("crash"),
            fetch_served: r.counter(
                "scatter_fetch_served_total",
                "Feature fetches this sift instance served",
                l(),
            ),
            fetch_dropped: r.counter(
                "scatter_fetch_dropped_total",
                "Feature fetches dropped at a busy sift's socket buffer",
                l(),
            ),
        }
    }

    /// A frame failed the objective (dropped anywhere in the pipeline).
    pub fn slo_breach(&mut self, now_s: f64) {
        self.slo.observe_breach(now_s);
    }

    /// A frame completed with the given end-to-end latency.
    pub fn slo_complete(&mut self, now_s: f64, e2e_ms: f64) {
        self.slo.observe(now_s, e2e_ms);
    }

    /// 1 Hz tick: run the SLO state machine and take a windowed scrape
    /// when a window boundary passes.
    pub fn tick(&mut self, now_s: f64) {
        if let Some(ev) = self.slo.evaluate(now_s) {
            self.slo_events.push(ev);
        }
        if now_s >= self.next_window_s as f64 {
            self.window_snapshots
                .push((now_s, self.registry.snapshot()));
            self.next_window_s += self.window_secs;
        }
    }
}

/// Everything a telemetered run returns beyond the report: the SLO
/// event log and the per-window scrapes (the caller already holds the
/// registry it passed in).
pub struct DesTelemetry {
    pub slo_events: Vec<SloEvent>,
    pub window_snapshots: Vec<(f64, telemetry::Snapshot)>,
    /// Final SLO tracker state (rolling quantiles, lifetime breach
    /// fraction, alert state at run end).
    pub slo: SloTracker,
}

// ---------------------------------------------------------------------
// Runtime (real UDP) plane
// ---------------------------------------------------------------------

/// Execution-plane label value for the real loopback-UDP runtime.
pub const RT_PLANE: &str = "runtime";

/// Machine label for the single-host runtime.
pub const RT_MACHINE: &str = "runtime-host";

/// Handles one runtime service thread records on. Acquired once at
/// spawn; every record afterwards is wait-free (this is the plane where
/// it matters — these are real threads on a hot receive loop).
#[derive(Clone)]
pub struct RtSvcObs {
    pub ingress: Counter,
    pub processed: Counter,
    pub latency_ms: Histogram,
    /// Staleness-filter drops (mirrors `SvcStats::dropped_stale`).
    pub drop_stale: Counter,
    /// Reassembler evictions: partial messages given up on.
    pub drop_fragment: Counter,
    /// Stateful `matching` only: frames abandoned after the sift fetch
    /// timed out (mirrors the deployment's `fetch_failures`).
    pub drop_stale_fetch: Counter,
    /// Frames lost to a replica crash: half-reassembled state that died
    /// with the thread plus arrivals at the dead socket during recovery
    /// (mirrors the DES `drops.down` / `DropReason::Crash`).
    pub drop_crash: Counter,
    /// Stateful `matching` only: frames completed during a fetch-wait
    /// that overflowed the parked queue (mirrors the DES busy-ingress
    /// drop — the service was busy waiting on sift).
    pub drop_busy: Counter,
    /// Frame messages the impairment shim ate whole, attributed at the
    /// send site exactly like the DES's netem losses (single-fragment
    /// messages).
    pub net_drop_netem: Counter,
    /// Same, for multi-fragment messages (all fragments eaten).
    pub net_drop_fragment: Counter,
    /// Wire-v2 datagrams rejected by their CRC check (corrupted in
    /// flight, dropped before any payload byte was parsed).
    pub invalid_crc: Counter,
    /// Wire-v2 delta frames dropped because their keyframe anchor was
    /// unavailable (self-synchronizing resync).
    pub delta_resync: Counter,
    pub malformed: Counter,
    pub send_errors: Counter,
    /// Real (non-WouldBlock/TimedOut) socket errors on the receive
    /// path — previously conflated with "no data yet" and hot-spun on.
    pub io_errors: Counter,
    /// Stateful `matching` only: fetch-request retransmissions under
    /// the deadline-bounded exponential backoff.
    pub fetch_retransmits: Counter,
    /// Partial messages currently buffered in the reassembler.
    pub reassembly_pending: Gauge,
    /// Stateful `sift` only: parked frame states awaiting fetch.
    pub state_store: Gauge,
}

impl RtSvcObs {
    pub fn new(registry: &Registry, kind: &'static str) -> RtSvcObs {
        let l = || {
            Labels::service(kind)
                .with_replica(0)
                .with_machine(RT_MACHINE)
                .with_plane(RT_PLANE)
        };
        RtSvcObs {
            ingress: registry.counter(
                "scatter_service_ingress_total",
                "Frames that reached this instance's ingress",
                l(),
            ),
            processed: registry.counter(
                "scatter_service_processed_total",
                "Frame executions completed by this instance",
                l(),
            ),
            latency_ms: registry.histogram(
                "scatter_service_latency_ms",
                "Per-frame service latency (wait + compute), ms",
                l(),
            ),
            drop_stale: registry.counter(
                "scatter_drops_total",
                "Frames dropped at a service instance, by reason",
                l().with_reason("threshold-filter"),
            ),
            drop_fragment: registry.counter(
                "scatter_drops_total",
                "Frames dropped at a service instance, by reason",
                l().with_reason("fragment-loss"),
            ),
            drop_stale_fetch: registry.counter(
                "scatter_drops_total",
                "Frames dropped at a service instance, by reason",
                l().with_reason("stale-fetch"),
            ),
            drop_crash: registry.counter(
                "scatter_drops_total",
                "Frames dropped at a service instance, by reason",
                l().with_reason("crash"),
            ),
            drop_busy: registry.counter(
                "scatter_drops_total",
                "Frames dropped at a service instance, by reason",
                l().with_reason("busy-ingress"),
            ),
            net_drop_netem: registry.counter(
                "scatter_net_drops_total",
                "Frame datagrams lost in the network, by reason",
                l().with_reason("netem-loss"),
            ),
            net_drop_fragment: registry.counter(
                "scatter_net_drops_total",
                "Frame datagrams lost in the network, by reason",
                l().with_reason("fragment-loss"),
            ),
            invalid_crc: registry.counter(
                "scatter_drops_total",
                "Frames dropped at a service instance, by reason",
                l().with_reason("invalid-crc"),
            ),
            delta_resync: registry.counter(
                "scatter_drops_total",
                "Frames dropped at a service instance, by reason",
                l().with_reason("delta-resync"),
            ),
            malformed: registry.counter(
                "scatter_malformed_datagrams_total",
                "Datagrams rejected by the wire decoder",
                l(),
            ),
            send_errors: registry.counter(
                "scatter_send_errors_total",
                "UDP send errors (counted, not fatal)",
                l(),
            ),
            io_errors: registry.counter(
                "scatter_io_errors_total",
                "Real socket errors on the receive path (not WouldBlock)",
                l(),
            ),
            fetch_retransmits: registry.counter(
                "scatter_fetch_retransmits_total",
                "Fetch-request retransmissions (deadline-bounded backoff)",
                l(),
            ),
            reassembly_pending: registry.gauge(
                "scatter_reassembly_pending",
                "Partial messages buffered in the reassembler",
                l(),
            ),
            state_store: registry.gauge(
                "scatter_state_store_size",
                "Parked frame states in stateful sift's feature store",
                l(),
            ),
        }
    }
}

/// Handles for the runtime's client side (shared by all client loops).
#[derive(Clone)]
pub struct RtClientObs {
    pub frames_emitted: Counter,
    pub frames_completed: Counter,
    pub e2e_ms: Histogram,
}

impl RtClientObs {
    pub fn new(registry: &Registry) -> RtClientObs {
        let plane = Labels::EMPTY.with_plane(RT_PLANE);
        RtClientObs {
            frames_emitted: registry.counter(
                "scatter_frames_emitted_total",
                "Frames emitted by all clients",
                plane.clone(),
            ),
            frames_completed: registry.counter(
                "scatter_frames_completed_total",
                "Frames whose result reached the client",
                plane.clone(),
            ),
            e2e_ms: registry.histogram(
                "scatter_e2e_latency_ms",
                "End-to-end frame latency (emission to result delivery), ms",
                plane,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_slot_creates_expected_series() {
        let reg = Registry::new();
        let mut obs = DesObs::new(reg.clone(), &["E1".to_string(), "E2".to_string()]);
        let slot = obs.register_slot("sift", 0, "E1");
        slot.ingress.inc();
        slot.drop_busy.inc();
        let snap = reg.snapshot();
        let labels = slot_labels("sift", 0, "E1");
        assert_eq!(snap.counter("scatter_service_ingress_total", &labels), 1);
        assert_eq!(
            snap.counter("scatter_drops_total", &labels.with_reason("busy-ingress")),
            1
        );
    }

    #[test]
    fn tick_takes_windowed_snapshots() {
        let reg = Registry::new();
        let mut obs = DesObs::new(reg, &[]);
        for s in 1..=11 {
            obs.tick(s as f64);
        }
        assert_eq!(obs.window_snapshots.len(), 2); // at 5 s and 10 s
    }
}
