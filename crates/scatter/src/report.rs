//! Per-run results: the QoS and hardware numbers every figure is
//! assembled from.

use metrics::{LogHistogram, Summary, TimeSeries};
use simcore::SimTime;

use crate::config::Mode;
use crate::message::ServiceKind;
use crate::service::DropCounters;

/// Results for one deployed service instance.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    pub kind: ServiceKind,
    pub replica: usize,
    pub machine: String,
    pub processed: u64,
    pub drops: DropCounters,
    pub latency_ms: Summary,
    /// Ingress arrivals over time (1.0 per arrival). Empty in streaming
    /// runs — the counters below carry the aggregates instead.
    pub ingress: TimeSeries,
    /// Drops over time (1.0 per drop). Empty in streaming runs.
    pub drops_over_time: TimeSeries,
    /// Whole-run / in-window ingress arrivals and in-window drop events.
    /// Populated in both modes (derived from the series in exact runs),
    /// so scale-aware consumers never need the O(events) series.
    pub ingress_total: u64,
    pub ingress_in_window: u64,
    pub drop_events_in_window: u64,
    /// Mean resident memory over the run, GB.
    pub mean_memory_gb: f64,
    pub peak_memory_gb: f64,
    /// Sidecar statistics (scAtteR++): filter drop ratio and mean queue
    /// delay. `None` when the instance has no sidecar (scAtteR runs) —
    /// previously these silently reported `0.0`, indistinguishable from
    /// a sidecar that never dropped/queued anything.
    pub sidecar_drop_ratio: Option<f64>,
    pub mean_queue_ms: Option<f64>,
    /// `sift` only: fetch-service counters.
    pub fetch_served: u64,
    pub fetch_dropped: u64,
}

/// Resilience-plane accounting for one run. All zeros when the plane is
/// disabled ([`crate::resilience::ResilienceConfig::default`]).
#[derive(Debug, Clone, Default)]
pub struct ResilienceReport {
    /// Suspicions raised by the heartbeat failure detector.
    pub detections: u64,
    /// Automatic redeploys driven by detection
    /// ([`orchestra::Cluster::redeploy_failed`]).
    pub redeploys: u64,
    /// Detection latencies (crash instant → suspicion), ms.
    pub detection_latency_ms: Vec<f64>,
    /// Frames the balancer handed to an instance *after* the detector
    /// had marked it failed. Failover correctness requires exactly 0.
    pub post_detection_misroutes: u64,
    /// Frames dropped because every replica of their next service was
    /// out (counted [`trace::DropReason::ServiceOutage`] terminals).
    pub outage_drops: u64,
    /// Client response deadlines that expired, and the retries issued.
    pub deadline_expired: u64,
    pub retries: u64,
    /// Results that arrived after their deadline and were re-attributed
    /// to [`trace::DropReason::ResponseDeadline`] instead of counted as
    /// completions.
    pub late_completions: u64,
    /// Explicit admission NACKs issued at the ladder's last rung.
    pub admission_nacks: u64,
    /// Ladder transitions applied, and the deepest rung reached.
    pub ladder_steps: u64,
    pub max_ladder_level: u8,
    /// Frames emitted at reduced quality (rung ≥ 1).
    pub degraded_frames: u64,
}

impl ResilienceReport {
    pub fn mean_detection_latency_ms(&self) -> f64 {
        if self.detection_latency_ms.is_empty() {
            return 0.0;
        }
        self.detection_latency_ms.iter().sum::<f64>() / self.detection_latency_ms.len() as f64
    }

    pub fn max_detection_latency_ms(&self) -> f64 {
        self.detection_latency_ms
            .iter()
            .cloned()
            .fold(0.0, f64::max)
    }
}

/// Wire-model accounting for one run. All zeros when the wire model is
/// off ([`crate::config::RunConfig::wire`] = `None`).
#[derive(Debug, Clone, Default)]
pub struct WireReport {
    /// The model ran (distinguishes "v1 modelled" from "no model").
    pub enabled: bool,
    /// v2 framing was modelled (delta + codec + CRC envelope).
    pub v2: bool,
    /// Total client→ingress datagram bytes, headers included — the
    /// number the cross-plane bytes gate compares against the runtime's
    /// send-site counter.
    pub uplink_bytes: u64,
    /// Corrupted datagrams caught by the v2 CRC at ingress (always 0
    /// under v1 framing: the damage passes silently).
    pub invalid_crc: u64,
}

/// Streaming-metrics aggregates for a scale-out run (DESIGN.md §14).
/// Present iff the run's [`crate::config::ScaleConfig::streaming`] was
/// on; the exact per-client vectors on [`RunReport`] are then empty and
/// the accessor methods fall back to these. Memory is O(sites +
/// histogram buckets) regardless of client count.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    pub sites: usize,
    /// Effective event-queue shard count the run executed with.
    pub shards: usize,
    /// Completions inside the measurement window, summed over clients —
    /// exact (the numerator of the mean-FPS fallback).
    pub completed_in_window: u64,
    /// Distribution of per-client mean FPS over the window (one sample
    /// per client; ≈2 % bucket resolution).
    pub fps_per_client: LogHistogram,
    /// End-to-end latency distribution over all completed frames, ms.
    pub e2e_hist: LogHistogram,
}

/// Hardware aggregates for one machine.
#[derive(Debug, Clone)]
pub struct MachineReport {
    pub name: String,
    /// Capacity-normalized utilization over the measurement window, %.
    pub cpu_pct: f64,
    pub gpu_pct: f64,
    pub mean_memory_gb: f64,
    pub peak_memory_gb: f64,
}

/// Everything one experiment run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub mode: Mode,
    pub clients: usize,
    /// Measurement window (post-warmup).
    pub measure_start: SimTime,
    pub measure_end: SimTime,
    /// Average completed-frame rate per client over the window.
    pub per_client_fps: Vec<f64>,
    /// Median of per-second rates, per client (robust statistic, what the
    /// paper quotes for the cloud deployment).
    pub per_client_fps_median: Vec<f64>,
    pub success_rate: f64,
    /// E2E latency over all clients, ms.
    pub e2e_ms: Summary,
    /// Mean Δ inter-frame jitter over clients, ms.
    pub jitter_ms: f64,
    /// Longest augmentation freeze (consecutive missing frames) over all
    /// clients — the user-facing cost of bursty loss.
    pub max_freeze_frames: u64,
    pub services: Vec<ServiceReport>,
    pub machines: Vec<MachineReport>,
    pub bytes_on_wire: u64,
    pub datagrams_lost: u64,
    /// Mid-run scale-out actions taken by the autoscaler (empty when
    /// autoscaling is off).
    pub scale_events: Vec<crate::autoscale::ScaleEvent>,
    /// Latency breakdown over completed frames (ms): per-stage compute,
    /// per-stage queue/fetch wait, and the network residual.
    pub breakdown_compute: [Summary; 5],
    pub breakdown_queue: [Summary; 5],
    pub breakdown_network: Summary,
    /// DES events executed over the whole run — the denominator for
    /// events/sec throughput benchmarking (`experiments --bin perfbench`).
    pub events_executed: u64,
    /// Resilience-plane accounting (all zeros when the plane is off).
    pub resilience: ResilienceReport,
    /// Wire-model accounting (all zeros when the model is off).
    pub wire: WireReport,
    /// Streaming scale-out aggregates (`None` unless the run streamed
    /// its metrics — exact runs, including sited non-streaming ones,
    /// keep the legacy fields and stay byte-identical to pre-scale
    /// reports).
    pub scale: Option<ScaleReport>,
}

impl RunReport {
    /// Mean per-client FPS — the figures' headline y-axis. Streaming
    /// runs compute it exactly from the completion counter (the mean of
    /// per-client rates over a shared window equals total completions /
    /// clients / seconds).
    pub fn fps(&self) -> f64 {
        if let Some(scale) = &self.scale {
            let secs = self
                .measure_end
                .saturating_since(self.measure_start)
                .as_secs_f64();
            if self.clients == 0 || secs <= 0.0 {
                return 0.0;
            }
            return scale.completed_in_window as f64 / self.clients as f64 / secs;
        }
        if self.per_client_fps.is_empty() {
            return 0.0;
        }
        self.per_client_fps.iter().sum::<f64>() / self.per_client_fps.len() as f64
    }

    /// Median per-second FPS averaged over clients. Streaming runs
    /// approximate with the median of the per-client mean-FPS histogram
    /// (within one ≈2 % bucket).
    pub fn fps_median(&self) -> f64 {
        if let Some(scale) = &self.scale {
            return scale.fps_per_client.median();
        }
        if self.per_client_fps_median.is_empty() {
            return 0.0;
        }
        self.per_client_fps_median.iter().sum::<f64>() / self.per_client_fps_median.len() as f64
    }

    /// Mean E2E latency in ms. Streaming runs read the histogram (mean
    /// within one bucket width).
    pub fn e2e_mean_ms(&self) -> f64 {
        if let Some(scale) = &self.scale {
            return scale.e2e_hist.mean();
        }
        self.e2e_ms.mean()
    }

    /// Merged service-latency summary for one service kind (all replicas).
    pub fn service_latency_ms(&self, kind: ServiceKind) -> Summary {
        let mut s = Summary::new();
        for svc in self.services.iter().filter(|s| s.kind == kind) {
            s.merge(&svc.latency_ms);
        }
        s
    }

    /// Total ingress FPS for a service kind over the window (all
    /// replicas) — fig. 8's per-service ingress rate.
    pub fn ingress_fps(&self, kind: ServiceKind) -> f64 {
        let secs = self
            .measure_end
            .saturating_since(self.measure_start)
            .as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.services
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| {
                if s.ingress.is_empty() {
                    // Streaming run: the counter carries the window count.
                    s.ingress_in_window as f64
                } else {
                    s.ingress.window_count(self.measure_start, self.measure_end) as f64
                }
            })
            .sum::<f64>()
            / secs
    }

    /// Aggregate drop ratio for a service kind: drops / ingress.
    pub fn drop_ratio(&self, kind: ServiceKind) -> f64 {
        let (mut drops, mut arrivals) = (0u64, 0u64);
        for s in self.services.iter().filter(|s| s.kind == kind) {
            drops += s.drops.total();
            arrivals += if s.ingress.is_empty() {
                s.ingress_total
            } else {
                s.ingress.window_count(SimTime::ZERO, self.measure_end) as u64
            };
        }
        if arrivals == 0 {
            0.0
        } else {
            drops as f64 / arrivals as f64
        }
    }

    /// Mean memory of a service kind (summed over replicas), GB.
    pub fn memory_gb(&self, kind: ServiceKind) -> f64 {
        self.services
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.mean_memory_gb)
            .sum()
    }

    /// Machine report by name.
    pub fn machine(&self, name: &str) -> Option<&MachineReport> {
        self.machines.iter().find(|m| m.name == name)
    }

    /// Total CPU / GPU across machines that host at least one service
    /// (utilization comparison across configurations).
    pub fn total_cpu_pct(&self) -> f64 {
        self.machines.iter().map(|m| m.cpu_pct).sum()
    }

    pub fn total_gpu_pct(&self) -> f64 {
        self.machines.iter().map(|m| m.gpu_pct).sum()
    }

    /// One-line human summary.
    pub fn summary_line(&self) -> String {
        format!(
            "{:?} n={} fps={:.1} succ={:.0}% e2e={:.1}ms jitter={:.2}ms",
            self.mode,
            self.clients,
            self.fps(),
            self.success_rate * 100.0,
            self.e2e_mean_ms(),
            self.jitter_ms
        )
    }
}
