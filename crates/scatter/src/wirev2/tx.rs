//! Client-side uplink policy: when to send a keyframe, when to delta,
//! and against which anchor.
//!
//! The rule set is deliberately *frame-number-deterministic* on a
//! healthy link: given the same frames and an ack for every anchor by
//! its horizon, the key/delta sequence — and therefore every byte on
//! the wire — is a pure function of the stream. That is what lets the
//! DES predict the runtime's uplink bytes exactly
//! ([`crate::wirev2::predict`] runs this same state machine with
//! [`UplinkTx::assume_acked`]).
//!
//! Per frame `n`:
//!
//! 1. Candidate anchor = the newest retained keyframe sent at frame
//!    `k ≤ n − ack_horizon` and not marked dead. (Younger keys may not
//!    have been acked yet; deltas only reference bases the receiver
//!    provably holds.)
//! 2. If the candidate was *not* acked by now, the key (or its ack)
//!    was lost: mark it dead and send a fresh keyframe — the refresh
//!    that makes the stream self-synchronizing under loss.
//! 3. A keyframe is also due every `key_interval` frames (bounds how
//!    long a corrupted epoch can last even if acks lie).
//! 4. Otherwise delta against the candidate — unless the delta would
//!    not actually be smaller, in which case key anyway.

use std::collections::{HashSet, VecDeque};

use bytes::Bytes;

use crate::wirev2::delta::{self, DeltaRx};
use crate::wirev2::FrameKind;

/// Uplink shaping knobs, shared by the runtime client and the DES
/// predictor (both planes must agree on every field for the byte gate
/// to hold).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UplinkPolicy {
    /// Delta-encode the uplink (off = every frame is a keyframe).
    pub delta: bool,
    /// Try the RLE codec per message (store-if-smaller).
    pub compress: bool,
    /// Force a keyframe at least every this many frames.
    pub key_interval: u32,
    /// Frames after which a sent keyframe must have been acked to be
    /// used as a delta anchor. At 30 fps, 3 frames = 100 ms — the e2e
    /// latency budget, so on a healthy link the result (our implicit
    /// ack) is back before the anchor matures. Must stay below
    /// [`DeltaRx::MAX_ANCHORS`]: a re-keying burst pushes an anchor
    /// per frame, and one of them has to live long enough to mature.
    pub ack_horizon: u32,
}

impl Default for UplinkPolicy {
    fn default() -> Self {
        UplinkPolicy {
            delta: true,
            compress: true,
            key_interval: 8,
            ack_horizon: 3,
        }
    }
}

/// Per-client uplink encoder state.
#[derive(Debug)]
pub struct UplinkTx {
    policy: UplinkPolicy,
    /// Predictor mode: treat every anchor as acked (the DES models a
    /// link whose losses are accounted elsewhere; on a pristine link
    /// the runtime behaves identically).
    assume_acked: bool,
    /// Sent keyframes, oldest first — mirror of [`DeltaRx`]'s store.
    anchors: VecDeque<(u32, Bytes)>,
    /// Anchors that missed their ack horizon; never delta against
    /// these again.
    dead: HashSet<u32>,
    /// Frame numbers whose result came back (pruned as anchors age
    /// out).
    acked: HashSet<u32>,
    last_key: Option<u32>,
}

impl UplinkTx {
    pub fn new(policy: UplinkPolicy) -> UplinkTx {
        UplinkTx {
            policy,
            assume_acked: false,
            anchors: VecDeque::new(),
            dead: HashSet::new(),
            acked: HashSet::new(),
            last_key: None,
        }
    }

    /// Predictor mode (see [`UplinkTx::assume_acked`] field docs).
    pub fn assume_acked(policy: UplinkPolicy) -> UplinkTx {
        UplinkTx {
            assume_acked: true,
            ..UplinkTx::new(policy)
        }
    }

    /// Record that `frame_no`'s result reached the client (every
    /// completed frame is an implicit ack of its uplink datagram).
    pub fn ack(&mut self, frame_no: u32) {
        self.acked.insert(frame_no);
    }

    /// Decide how frame `frame_no` (already DCT-encoded as `stream`)
    /// ships: `(kind, base_frame_no, payload)`.
    pub fn prepare(&mut self, frame_no: u32, stream: Bytes) -> (FrameKind, u32, Bytes) {
        if !self.policy.delta {
            return (FrameKind::DctKey, 0, stream);
        }
        let candidate = self
            .anchors
            .iter()
            .rev()
            .find(|(f, _)| {
                frame_no.saturating_sub(*f) >= self.policy.ack_horizon && !self.dead.contains(f)
            })
            .map(|(f, s)| (*f, s.clone()));
        let candidate = match candidate {
            Some((f, s)) => {
                if self.assume_acked || self.acked.contains(&f) {
                    Some((f, s))
                } else {
                    // Keyframe refresh: the anchor (or its ack path)
                    // was lost. Re-key now; the receiver resyncs on
                    // this frame.
                    self.dead.insert(f);
                    None
                }
            }
            None => None,
        };
        let key_due = match self.last_key {
            Some(k) => frame_no.saturating_sub(k) >= self.policy.key_interval,
            None => true,
        };
        if !key_due {
            if let Some((base, anchor)) = candidate {
                if let Some(d) = delta::encode_delta(&anchor, &stream) {
                    return (FrameKind::DctDelta, base, Bytes::from(d));
                }
            }
        }
        self.push_anchor(frame_no, stream.clone());
        (FrameKind::DctKey, 0, stream)
    }

    fn push_anchor(&mut self, frame_no: u32, stream: Bytes) {
        self.anchors.push_back((frame_no, stream));
        while self.anchors.len() > DeltaRx::MAX_ANCHORS {
            self.anchors.pop_front();
        }
        self.last_key = Some(frame_no);
        // Keep the ack/dead books bounded: nothing older than the
        // oldest retained anchor can matter again.
        if let Some(&(oldest, _)) = self.anchors.front() {
            self.acked.retain(|&f| f >= oldest);
            self.dead.retain(|&f| f >= oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vision::codec::{encode, Quality};
    use vision::scene::SceneGenerator;

    fn stream(g: &SceneGenerator, i: u32) -> Bytes {
        encode(&g.frame(i), Quality(85))
    }

    fn policy() -> UplinkPolicy {
        UplinkPolicy {
            delta: true,
            compress: true,
            key_interval: 8,
            ack_horizon: 3,
        }
    }

    #[test]
    fn acked_steady_state_alternates_keys_and_deltas() {
        let g = SceneGenerator::workplace_scaled(7, 128, 72);
        let mut tx = UplinkTx::new(policy());
        let mut kinds = Vec::new();
        for f in 0..24u32 {
            let (kind, base, payload) = tx.prepare(f, stream(&g, f));
            if kind == FrameKind::DctDelta {
                assert!(
                    f - base >= 3,
                    "delta at {f} against too-young anchor {base}"
                );
                assert!(payload.len() < stream(&g, f).len());
            }
            kinds.push(kind);
            tx.ack(f); // prompt acks
        }
        assert_eq!(kinds[0], FrameKind::DctKey);
        let deltas = kinds.iter().filter(|k| **k == FrameKind::DctDelta).count();
        let keys = kinds.iter().filter(|k| **k == FrameKind::DctKey).count();
        assert!(
            deltas > keys,
            "steady state should be delta-dominated: {kinds:?}"
        );
    }

    #[test]
    fn unacked_anchor_forces_keyframe_refresh() {
        let g = SceneGenerator::workplace_scaled(7, 128, 72);
        let mut tx = UplinkTx::new(policy());
        // Never ack anything: every frame past the horizon re-keys.
        for f in 0..8u32 {
            let (kind, _, _) = tx.prepare(f, stream(&g, f));
            assert_eq!(
                kind,
                FrameKind::DctKey,
                "frame {f} must re-key without acks"
            );
        }
    }

    #[test]
    fn predictor_matches_acked_runtime_sequence() {
        let g = SceneGenerator::workplace_scaled(7, 128, 72);
        let mut live = UplinkTx::new(policy());
        let mut pred = UplinkTx::assume_acked(policy());
        for f in 0..40u32 {
            let a = live.prepare(f, stream(&g, f));
            let b = pred.prepare(f, stream(&g, f));
            assert_eq!(a, b, "divergence at frame {f}");
            live.ack(f);
        }
    }

    #[test]
    fn key_interval_bounds_delta_epochs() {
        let g = SceneGenerator::workplace_scaled(7, 128, 72);
        let mut tx = UplinkTx::new(policy());
        let mut last_key = None;
        for f in 0..64u32 {
            let (kind, _, _) = tx.prepare(f, stream(&g, f));
            if kind == FrameKind::DctKey {
                if let Some(k) = last_key {
                    assert!(f - k <= 8, "keyframe gap {k}..{f} exceeds interval");
                }
                last_key = Some(f);
            }
            tx.ack(f);
        }
    }
}
