//! Wire protocol v2: CRC-checked, optionally compressed, delta-encoded
//! frame datagrams.
//!
//! v1 ([`crate::runtime::wire`]) trusts every byte it parses: a flipped
//! bit in a payload sails through the fragment header checks and
//! surfaces — if at all — as an unattributable typed-payload decode
//! failure three services downstream. And it ships every uplink frame
//! in full, which is exactly what the paper's LTE profile cannot
//! afford: constrained links are loss- and bandwidth-dominated long
//! before compute saturates.
//!
//! v2 wraps each v1 fragment datagram in a 19-byte envelope:
//!
//! ```text
//! [0..4)   MAGIC2 "SC2V"
//! [4..8)   CRC32 (IEEE) over bytes [8..]
//! [8]      version  (2)
//! [9]      codec id (0 = none, 1 = RLE)         — §codec
//! [10]     frame kind (0 plain, 1 key, 2 delta) — §delta
//! [11..15) base frame_no (delta anchor; 0 otherwise)
//! [15..19) raw payload length before compression
//! [19..)   unmodified v1 fragment datagram
//! ```
//!
//! Three mechanisms, all dependency-free:
//!
//! - **Integrity** ([`crc`], [`envelope`]): a corrupt datagram fails
//!   the CRC and is dropped with a counted
//!   [`trace::DropReason::InvalidCrc`] — never a panic, never a
//!   half-parsed frame. The frame identity is recovered best-effort
//!   from the inner header so forensics can attribute the loss.
//! - **Compression** ([`codec`]): payloads are compressed behind the
//!   [`codec::Codec`] trait (store-if-smaller per message, so a codec
//!   that loses on a payload costs one envelope byte, not a regression
//!   — this per-message fallback *is* the negotiation).
//! - **Delta encoding** ([`delta`], [`tx`]): the client uplink sends
//!   DCT block deltas against a previously *acked* keyframe. Deltas
//!   only ever reference retained keyframes (never other deltas), so a
//!   lost delta costs exactly one frame; an unacked anchor forces a
//!   keyframe refresh. A receiver that cannot resolve an anchor drops
//!   the frame with [`trace::DropReason::DeltaResync`] — it can never
//!   decode against the wrong base.
//!
//! Both planes speak v2: the runtime ships real envelopes through the
//! impairment shim ([`rx::RxState`] at every receive site), while the
//! DES consumes an analytically precomputed byte schedule
//! ([`predict::uplink_schedule`]) produced by running the *same*
//! encoder pipeline — which is what makes exact cross-plane
//! bytes-on-wire agreement a testable gate rather than a hope.

pub mod codec;
pub mod crc;
pub mod delta;
pub mod envelope;
pub mod predict;
pub mod rx;
pub mod tx;

pub use codec::{Codec, CodecKind, Rle};
pub use delta::DeltaRx;
pub use envelope::{
    decode_any, encode_msg, Decoded, IngestError, RecoveredId, V2Meta, MAGIC2, V2_ENVELOPE_BYTES,
};
pub use rx::RxState;
pub use tx::{UplinkPolicy, UplinkTx};

/// What a v2 payload *is*, carried in the envelope so the receiver
/// knows how to reconstruct the frame before handing it to the
/// pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Not a camera frame (inter-service state, results, fetches):
    /// passes through untouched.
    Plain = 0,
    /// A full DCT stream; the receiver retains it as a delta anchor.
    DctKey = 1,
    /// A block delta against the anchor named by `base_frame_no`.
    DctDelta = 2,
}

impl FrameKind {
    pub fn from_u8(v: u8) -> Option<FrameKind> {
        match v {
            0 => Some(FrameKind::Plain),
            1 => Some(FrameKind::DctKey),
            2 => Some(FrameKind::DctDelta),
            _ => None,
        }
    }
}
