//! CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over a byte
//! slice — the standard zlib/Ethernet checksum, table-driven, no
//! dependencies. Guards every v2 datagram so corruption is *detected
//! and counted* instead of parsed.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC32 of `data` (full-slice convenience over a fresh state).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check values for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = vec![0xA5u8; 257];
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut d = data.clone();
                d[i] ^= 1 << bit;
                assert_ne!(crc32(&d), base, "flip at byte {i} bit {bit} undetected");
            }
        }
    }
}
