//! Analytic bytes-on-wire model for the DES plane.
//!
//! The DES does not push real datagrams, but for the cross-plane
//! bytes-on-wire gate it must account for *exactly* the bytes the
//! runtime would send. Rather than re-deriving the encoder analytically
//! (and diverging one varint at a time), the predictor runs the real
//! pipeline — scene → DCT encode → [`UplinkTx`] → codec — once per
//! client at world build, producing a per-frame datagram-byte schedule
//! the simulation then consumes. Agreement with the runtime is by
//! construction; the `wire` experiment gates it anyway.

use vision::codec::{encode, Quality};
use vision::scene::SceneGenerator;

use crate::runtime::wire::{CHUNK_BYTES, HEADER_BYTES};
use crate::wirev2::codec::maybe_compress;
use crate::wirev2::envelope::V2_ENVELOPE_BYTES;
use crate::wirev2::tx::{UplinkPolicy, UplinkTx};

/// The scene a given client streams — shared verbatim with the runtime
/// client threads, which is what anchors the two planes to identical
/// payload bytes.
pub fn client_scene(seed: u64, cid: u16, width: usize, height: usize) -> SceneGenerator {
    SceneGenerator::workplace_scaled(seed ^ ((cid as u64) << 8), width, height)
}

/// Total datagram bytes for one message of `payload_len` bytes under
/// v1 framing (fragment headers only).
pub fn v1_wire_bytes(payload_len: usize) -> u64 {
    let frags = payload_len.div_ceil(CHUNK_BYTES).max(1);
    (payload_len + frags * HEADER_BYTES) as u64
}

/// Same under v2 framing (fragment header + sealed envelope per
/// datagram).
pub fn v2_wire_bytes(payload_len: usize) -> u64 {
    let frags = payload_len.div_ceil(CHUNK_BYTES).max(1);
    (payload_len + frags * (HEADER_BYTES + V2_ENVELOPE_BYTES)) as u64
}

/// Per-frame uplink datagram bytes for one client, v2 pipeline:
/// delta/key decision by the *same* [`UplinkTx`] state machine the
/// runtime client runs (predictor mode: anchors assumed acked — exact
/// on a healthy link), then the same store-if-smaller codec.
pub fn uplink_schedule_v2(
    seed: u64,
    cid: u16,
    width: usize,
    height: usize,
    quality: u8,
    frames: usize,
    policy: UplinkPolicy,
) -> Vec<u64> {
    let scene = client_scene(seed, cid, width, height);
    let mut tx = UplinkTx::assume_acked(policy);
    (0..frames)
        .map(|f| {
            let stream = encode(&scene.frame(f as u32), Quality(quality));
            let (_kind, _base, payload) = tx.prepare(f as u32, stream);
            let (_codec, compressed) = maybe_compress(&payload, policy.compress);
            let shipped = compressed.map_or(payload.len(), |c| c.len());
            v2_wire_bytes(shipped)
        })
        .collect()
}

/// Per-frame uplink datagram bytes for one client, v1 pipeline (full
/// DCT stream every frame, bare fragment framing) — the baseline side
/// of the bytes-on-wire comparison.
pub fn uplink_schedule_v1(
    seed: u64,
    cid: u16,
    width: usize,
    height: usize,
    quality: u8,
    frames: usize,
) -> Vec<u64> {
    let scene = client_scene(seed, cid, width, height);
    (0..frames)
        .map(|f| v1_wire_bytes(encode(&scene.frame(f as u32), Quality(quality)).len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ServiceKind;
    use crate::runtime::wire::WireMsg;
    use crate::wirev2::envelope;
    use crate::wirev2::FrameKind;
    use bytes::Bytes;

    /// The predictor's byte formula must equal what the real encoder
    /// puts on the wire, datagram for datagram.
    #[test]
    fn formulas_match_real_encoders() {
        for len in [
            0usize,
            1,
            100,
            CHUNK_BYTES,
            CHUNK_BYTES + 1,
            3 * CHUNK_BYTES + 7,
        ] {
            let m = WireMsg {
                client: 2,
                frame_no: 9,
                step: ServiceKind::Primary,
                emit_micros: 1,
                return_port: 2,
                trace_id: 3,
                flags: 0,
                sent_micros: 4,
                payload: Bytes::from(vec![0xABu8; len]),
            };
            let v1: usize = crate::runtime::wire::encode(&m)
                .iter()
                .map(|d| d.len())
                .sum();
            assert_eq!(v1 as u64, v1_wire_bytes(len), "v1 at {len}");
            // Compression off isolates the framing arithmetic.
            let (dgrams, _) = envelope::encode_msg(&m, false, FrameKind::Plain, 0);
            let v2: usize = dgrams.iter().map(|d| d.len()).sum();
            assert_eq!(v2 as u64, v2_wire_bytes(len), "v2 at {len}");
        }
    }

    /// End-to-end: the schedule equals the bytes a faithful client-side
    /// send loop produces for the same scene and policy.
    #[test]
    fn schedule_matches_live_send_loop() {
        let (seed, cid, w, h, q, n) = (7u64, 1u16, 128usize, 72usize, 85u8, 20usize);
        let policy = UplinkPolicy::default();
        let schedule = uplink_schedule_v2(seed, cid, w, h, q, n, policy);
        let scene = client_scene(seed, cid, w, h);
        let mut tx = UplinkTx::new(policy);
        for (f, &predicted) in schedule.iter().enumerate() {
            let stream = encode(&scene.frame(f as u32), Quality(q));
            let (kind, base, payload) = tx.prepare(f as u32, stream);
            let m = WireMsg {
                client: cid,
                frame_no: f as u32,
                step: ServiceKind::Primary,
                emit_micros: 0,
                return_port: 0,
                trace_id: 0,
                flags: 0,
                sent_micros: 0,
                payload,
            };
            let (dgrams, _) = envelope::encode_msg(&m, policy.compress, kind, base);
            let sent: u64 = dgrams.iter().map(|d| d.len() as u64).sum();
            assert_eq!(sent, predicted, "frame {f}");
            tx.ack(f as u32); // healthy link: prompt acks
        }
    }

    /// v2's whole point: fewer bytes per frame than v1 on the same
    /// scene.
    #[test]
    fn v2_schedule_beats_v1() {
        let v1: u64 = uplink_schedule_v1(7, 0, 128, 72, 85, 24).iter().sum();
        let v2: u64 = uplink_schedule_v2(7, 0, 128, 72, 85, 24, UplinkPolicy::default())
            .iter()
            .sum();
        assert!(
            v2 < v1 * 9 / 10,
            "v2 ({v2}) should undercut v1 ({v1}) by well over 10%"
        );
    }
}
