//! Delta encoding over the vision DCT stream, at block granularity.
//!
//! The uplink codec ([`vision::codec`]) emits `[w u32][h u32][q u8]`
//! followed by one RLE/varint substream per 8×8 block, each terminated
//! by `0xFF`. That framing is self-delimiting, so a delta can operate
//! on *encoded* blocks without touching pixels: ship only the blocks
//! whose encoded bytes changed against an anchor keyframe, plus a
//! presence bitmap. On the paper's workplace scenes 35–45 % of blocks
//! change between adjacent frames, cutting a ~4 KB frame to ~2.5 KB —
//! and reconstruction is an exact byte splice, so the decoded pixels
//! are bit-identical to a full send.
//!
//! Resync rules (the reason a lost delta can never corrupt state):
//!
//! - Deltas reference an explicit anchor (`base_frame_no`), and anchors
//!   are always *keyframes* — never other deltas, so loss cannot chain.
//! - [`DeltaRx`] retains the last [`DeltaRx::MAX_ANCHORS`] keyframes;
//!   a delta whose anchor is unknown (lost, evicted, or from a
//!   pre-crash life) is dropped whole — counted as
//!   [`trace::DropReason::DeltaResync`] by the caller, never spliced
//!   against the wrong base.
//! - The sender ([`crate::wirev2::tx`]) only deltas against anchors old
//!   enough to have been acked, and refreshes with a keyframe when an
//!   anchor goes unacknowledged.

use std::collections::VecDeque;

use bytes::Bytes;

/// `[w u32][h u32][q u8]` — the vision codec's stream header.
const STREAM_HEADER: usize = 9;

/// Delta stream: the 9-byte header (must equal the anchor's), a
/// changed-block bitmap, then the changed blocks' substreams in block
/// order.
///
/// Parsed view of an encoded DCT stream: header + per-block substream
/// ranges. `None` when the stream is not structurally valid — every
/// offset is bounds-checked, so arbitrary bytes can be offered safely.
struct Blocks<'a> {
    header: &'a [u8],
    /// `(start, end)` byte ranges of each block substream, in order.
    ranges: Vec<(usize, usize)>,
}

fn split_stream(data: &[u8]) -> Option<Blocks<'_>> {
    if data.len() < STREAM_HEADER {
        return None;
    }
    let w = u32::from_be_bytes([data[0], data[1], data[2], data[3]]) as usize;
    let h = u32::from_be_bytes([data[4], data[5], data[6], data[7]]) as usize;
    if w == 0 || h == 0 || w > 16_384 || h > 16_384 {
        return None;
    }
    let nblocks = w.div_ceil(8) * h.div_ceil(8);
    let mut ranges = Vec::with_capacity(nblocks);
    let mut pos = STREAM_HEADER;
    while pos < data.len() {
        if ranges.len() == nblocks {
            return None; // trailing bytes past the last block
        }
        let start = pos;
        pos = parse_block(data, pos)?;
        ranges.push((start, pos));
    }
    if ranges.len() != nblocks {
        return None;
    }
    Some(Blocks {
        header: &data[..STREAM_HEADER],
        ranges,
    })
}

/// Walk one block substream starting at `pos`; returns the offset just
/// past its `0xFF` terminator. `None` on truncation.
fn parse_block(data: &[u8], mut pos: usize) -> Option<usize> {
    loop {
        let run = *data.get(pos)?;
        pos += 1;
        if run == 0xFF {
            return Some(pos);
        }
        // A zigzag varint follows the run byte.
        loop {
            let b = *data.get(pos)?;
            pos += 1;
            if b & 0x80 == 0 {
                break;
            }
        }
    }
}

/// Encode `cur` as a delta against `anchor`. `None` when a delta is
/// not possible (either stream malformed, dimensions differ) or not
/// profitable (delta would be no smaller than the full stream) — the
/// caller sends a keyframe instead.
pub fn encode_delta(anchor: &[u8], cur: &[u8]) -> Option<Vec<u8>> {
    let a = split_stream(anchor)?;
    let c = split_stream(cur)?;
    if a.header != c.header {
        return None;
    }
    let nblocks = c.ranges.len();
    let bitmap_len = nblocks.div_ceil(8);
    let mut out = Vec::with_capacity(cur.len() / 2);
    out.extend_from_slice(c.header);
    out.resize(STREAM_HEADER + bitmap_len, 0);
    for (i, (&(cs, ce), &(as_, ae))) in c.ranges.iter().zip(&a.ranges).enumerate() {
        if cur[cs..ce] != anchor[as_..ae] {
            out[STREAM_HEADER + i / 8] |= 1 << (i % 8);
            out.extend_from_slice(&cur[cs..ce]);
        }
    }
    (out.len() < cur.len()).then_some(out)
}

/// Splice a delta onto its anchor, reconstructing the full DCT stream.
/// `None` on any malformation: wrong header, bad bitmap length, block
/// parse failure, or leftover bytes. The output either equals the
/// sender's full stream or the delta is rejected whole.
pub fn apply_delta(anchor: &[u8], delta: &[u8]) -> Option<Vec<u8>> {
    let a = split_stream(anchor)?;
    let nblocks = a.ranges.len();
    let bitmap_len = nblocks.div_ceil(8);
    if delta.len() < STREAM_HEADER + bitmap_len || &delta[..STREAM_HEADER] != a.header {
        return None;
    }
    let bitmap = &delta[STREAM_HEADER..STREAM_HEADER + bitmap_len];
    let mut out = Vec::with_capacity(anchor.len() + delta.len());
    out.extend_from_slice(a.header);
    let mut pos = STREAM_HEADER + bitmap_len;
    for (i, &(as_, ae)) in a.ranges.iter().enumerate() {
        if bitmap[i / 8] & (1 << (i % 8)) != 0 {
            let start = pos;
            pos = parse_block(delta, pos)?;
            out.extend_from_slice(&delta[start..pos]);
        } else {
            out.extend_from_slice(&anchor[as_..ae]);
        }
    }
    (pos == delta.len()).then_some(out)
}

/// Receiver-side anchor store: the last few keyframes per client, so
/// deltas can resolve their base. Bounded; an unresolvable delta is a
/// counted resync drop, never a guess.
#[derive(Debug, Default)]
pub struct DeltaRx {
    /// `(frame_no, full DCT stream)`, oldest first.
    anchors: VecDeque<(u32, Bytes)>,
}

impl DeltaRx {
    /// Keyframes retained. The sender keeps the same number, so any
    /// anchor it deltas against is one the receiver still holds (when
    /// the keyframe itself arrived). Must exceed the largest sane
    /// [`ack_horizon`](crate::wirev2::tx::UplinkPolicy::ack_horizon):
    /// during a re-keying burst every frame pushes an anchor, and an
    /// anchor must survive in the store long enough to mature past the
    /// horizon or the sender can never delta again.
    pub const MAX_ANCHORS: usize = 8;

    pub fn new() -> DeltaRx {
        DeltaRx::default()
    }

    /// Process one arrived frame payload; `frame_no` is the wire
    /// header's frame number (the identity later deltas reference).
    /// Keyframes are retained and passed through; deltas are spliced
    /// onto their anchor. `None` means the frame must be dropped for
    /// resync (unknown anchor or malformed delta) — the caller counts
    /// it and moves on, and the next keyframe re-synchronizes the
    /// stream.
    pub fn accept_frame(
        &mut self,
        kind: crate::wirev2::FrameKind,
        base_frame_no: u32,
        frame_no: u32,
        payload: Bytes,
    ) -> Option<Bytes> {
        use crate::wirev2::FrameKind::*;
        match kind {
            Plain => Some(payload),
            DctKey => {
                self.anchors.push_back((frame_no, payload.clone()));
                while self.anchors.len() > Self::MAX_ANCHORS {
                    self.anchors.pop_front();
                }
                Some(payload)
            }
            DctDelta => {
                let anchor = self
                    .anchors
                    .iter()
                    .find(|(f, _)| *f == base_frame_no)
                    .map(|(_, s)| s.clone())?;
                apply_delta(&anchor, &payload).map(Bytes::from)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wirev2::FrameKind;
    use vision::codec::{encode, Quality};
    use vision::scene::SceneGenerator;

    fn streams(n: u32) -> Vec<Vec<u8>> {
        let g = SceneGenerator::workplace_scaled(7, 128, 72);
        (0..n)
            .map(|i| encode(&g.frame(i), Quality(85)).to_vec())
            .collect()
    }

    #[test]
    fn delta_round_trip_is_exact() {
        let s = streams(4);
        for i in 1..s.len() {
            let d = encode_delta(&s[0], &s[i]).expect("profitable delta");
            assert!(d.len() < s[i].len(), "delta not smaller at frame {i}");
            assert_eq!(apply_delta(&s[0], &d).expect("apply"), s[i]);
        }
    }

    #[test]
    fn identical_frames_delta_to_header_plus_bitmap() {
        let s = streams(1);
        let d = encode_delta(&s[0], &s[0]).expect("delta of self");
        let nblocks = (128usize / 8) * (72 / 8);
        assert_eq!(d.len(), 9 + nblocks.div_ceil(8));
        assert_eq!(apply_delta(&s[0], &d).unwrap(), s[0]);
    }

    #[test]
    fn dimension_mismatch_refused() {
        let a = streams(1);
        let g = SceneGenerator::workplace_scaled(7, 64, 64);
        let b = encode(&g.frame(0), Quality(85)).to_vec();
        assert!(encode_delta(&a[0], &b).is_none());
        assert!(apply_delta(&a[0], &b).is_none());
    }

    #[test]
    fn malformed_delta_never_panics_and_is_rejected() {
        let s = streams(2);
        let d = encode_delta(&s[0], &s[1]).expect("delta");
        // Truncations.
        for cut in 0..d.len() {
            let _ = apply_delta(&s[0], &d[..cut]); // must not panic
        }
        // Leftover garbage must be rejected (splice-then-ignore would
        // silently decode a wrong frame).
        let mut extended = d.clone();
        extended.push(0xFF);
        assert!(apply_delta(&s[0], &extended).is_none());
    }

    #[test]
    fn rx_resyncs_on_missing_anchor() {
        let s = streams(3);
        let mut rx = DeltaRx::new();
        // The key (frame 0) never arrives; the delta must drop.
        let d = encode_delta(&s[0], &s[1]).expect("delta");
        assert!(rx
            .accept_frame(FrameKind::DctDelta, 0, 1, Bytes::from(d.clone()))
            .is_none());
        // Key arrives: retained and passed through.
        let k = rx
            .accept_frame(FrameKind::DctKey, 0, 0, Bytes::from(s[0].clone()))
            .expect("key passes");
        assert_eq!(&k[..], &s[0][..]);
        // Now the delta resolves and reconstructs the exact stream.
        let full = rx
            .accept_frame(FrameKind::DctDelta, 0, 1, Bytes::from(d))
            .expect("delta applies");
        assert_eq!(&full[..], &s[1][..]);
    }

    #[test]
    fn anchor_store_is_bounded() {
        let s = streams(1);
        let mut rx = DeltaRx::new();
        for f in 0..10u32 {
            rx.accept_frame(FrameKind::DctKey, 0, f, Bytes::from(s[0].clone()));
        }
        assert_eq!(rx.anchors.len(), DeltaRx::MAX_ANCHORS);
        // Oldest anchors were evicted: a delta against frame 0 resyncs.
        let d = encode_delta(&s[0], &s[0]).expect("delta");
        assert!(rx
            .accept_frame(FrameKind::DctDelta, 0, 11, Bytes::from(d.clone()))
            .is_none());
        assert!(rx
            .accept_frame(FrameKind::DctDelta, 9, 11, Bytes::from(d))
            .is_some());
    }
}
