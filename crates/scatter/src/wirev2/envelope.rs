//! The v2 datagram envelope: 19 bytes wrapping an unmodified v1
//! fragment (layout in the [module docs](crate::wirev2)). Encoding
//! compresses the *message* payload once (store-if-smaller), fragments
//! it with the v1 encoder, then seals each fragment; decoding verifies
//! the CRC before a single inner byte is parsed.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::message::ServiceKind;
use crate::runtime::wire::{self, Fragment, WireError, WireMsg};
use crate::wirev2::codec::{self, CodecKind};
use crate::wirev2::crc::crc32;
use crate::wirev2::FrameKind;

/// v2 magic: "SC2V".
pub const MAGIC2: u32 = 0x5343_3256;

/// Envelope overhead per datagram, on top of the v1 fragment.
pub const V2_ENVELOPE_BYTES: usize = 19;

/// The envelope metadata a receiver needs to reconstruct the message
/// payload after reassembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V2Meta {
    pub codec: CodecKind,
    pub kind: FrameKind,
    /// Delta anchor frame number (0 unless `kind == DctDelta`).
    pub base_frame_no: u32,
    /// Payload length before compression.
    pub raw_len: u32,
}

impl V2Meta {
    /// Metadata equivalent to a v1 datagram: raw, plain, no anchor.
    pub fn plain() -> V2Meta {
        V2Meta {
            codec: CodecKind::None,
            kind: FrameKind::Plain,
            base_frame_no: 0,
            raw_len: 0,
        }
    }
}

/// Best-effort identity of a CRC-failed datagram, recovered from the
/// inner v1 header when the corruption spared it. Enough to emit an
/// `InvalidCrc` terminal on the frame's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveredId {
    pub client: u16,
    pub frame_no: u32,
    pub step: ServiceKind,
    pub flags: u8,
    /// The message fits one datagram, so this CRC failure kills the
    /// whole frame (multi-fragment losses are attributed by reassembly
    /// eviction instead, exactly like v1 fragment loss).
    pub single_fragment: bool,
}

/// Why an incoming datagram was rejected before reassembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestError {
    /// The envelope CRC did not match: the datagram was corrupted in
    /// flight. Dropped and counted — never parsed further.
    InvalidCrc { recovered: Option<RecoveredId> },
    /// Structurally invalid (v1 or v2): counted as malformed.
    Malformed(WireError),
}

/// A structurally valid incoming datagram.
#[derive(Debug, Clone, PartialEq)]
pub enum Decoded {
    /// Bare v1 datagram (v2 receivers stay bilingual — mixed fleets
    /// and the v1 control plane keep working).
    V1(Fragment),
    /// CRC-verified v2 datagram.
    V2(Fragment, V2Meta),
}

/// Encode `msg` into sealed v2 datagrams. The payload is compressed
/// once (store-if-smaller when `compress`), fragmented by the v1
/// encoder, and each fragment wrapped and CRC-sealed. Returns the
/// datagrams and the codec that won.
pub fn encode_msg(
    msg: &WireMsg,
    compress: bool,
    kind: FrameKind,
    base_frame_no: u32,
) -> (Vec<Bytes>, CodecKind) {
    let raw_len = msg.payload.len() as u32;
    let (codec_kind, compressed) = codec::maybe_compress(&msg.payload, compress);
    let inner = match compressed {
        Some(c) => WireMsg {
            payload: Bytes::from(c),
            ..msg.clone()
        },
        None => msg.clone(),
    };
    let datagrams = wire::encode(&inner)
        .into_iter()
        .map(|frag| seal(&frag, codec_kind, kind, base_frame_no, raw_len))
        .collect();
    (datagrams, codec_kind)
}

/// Wrap one v1 fragment datagram in a sealed envelope.
pub fn seal(
    inner: &[u8],
    codec: CodecKind,
    kind: FrameKind,
    base_frame_no: u32,
    raw_len: u32,
) -> Bytes {
    let mut buf = BytesMut::with_capacity(V2_ENVELOPE_BYTES + inner.len());
    buf.put_u32(MAGIC2);
    buf.put_u32(0); // CRC placeholder
    buf.put_u8(2);
    buf.put_u8(codec as u8);
    buf.put_u8(kind as u8);
    buf.put_u32(base_frame_no);
    buf.put_u32(raw_len);
    buf.put_slice(inner);
    let crc = crc32(&buf[8..]);
    buf[4..8].copy_from_slice(&crc.to_be_bytes());
    buf.freeze()
}

/// Parse one datagram, v1 or v2. The CRC is checked before anything
/// inside the envelope is interpreted; corrupt datagrams come back as
/// [`IngestError::InvalidCrc`] with a best-effort identity so the drop
/// can be attributed on the frame's trace.
pub fn decode_any(datagram: &[u8]) -> Result<Decoded, IngestError> {
    if datagram.len() < 4 {
        return Err(IngestError::Malformed(WireError::Truncated));
    }
    let magic = u32::from_be_bytes([datagram[0], datagram[1], datagram[2], datagram[3]]);
    if magic == wire::MAGIC {
        return wire::decode_fragment(datagram)
            .map(Decoded::V1)
            .map_err(IngestError::Malformed);
    }
    if magic != MAGIC2 {
        return Err(IngestError::Malformed(WireError::BadMagic));
    }
    if datagram.len() < V2_ENVELOPE_BYTES {
        return Err(IngestError::Malformed(WireError::Truncated));
    }
    let mut hdr = &datagram[4..V2_ENVELOPE_BYTES];
    let crc = hdr.get_u32();
    if crc != crc32(&datagram[8..]) {
        return Err(IngestError::InvalidCrc {
            recovered: recover_id(&datagram[V2_ENVELOPE_BYTES..]),
        });
    }
    let version = hdr.get_u8();
    if version != 2 {
        return Err(IngestError::Malformed(WireError::BadVersion));
    }
    let codec =
        CodecKind::from_u8(hdr.get_u8()).ok_or(IngestError::Malformed(WireError::BadCodec))?;
    let kind =
        FrameKind::from_u8(hdr.get_u8()).ok_or(IngestError::Malformed(WireError::BadKind))?;
    let base_frame_no = hdr.get_u32();
    let raw_len = hdr.get_u32();
    let frag =
        wire::decode_fragment(&datagram[V2_ENVELOPE_BYTES..]).map_err(IngestError::Malformed)?;
    Ok(Decoded::V2(
        frag,
        V2Meta {
            codec,
            kind,
            base_frame_no,
            raw_len,
        },
    ))
}

/// Try to name the frame a CRC-failed datagram belonged to. The flip
/// may have landed in the envelope (inner header intact) or in the
/// body (header still intact) — only a flip inside the 46 header bytes
/// loses the identity, and then this returns `None`.
fn recover_id(inner: &[u8]) -> Option<RecoveredId> {
    let frag = wire::decode_fragment(inner).ok()?;
    Some(RecoveredId {
        client: frag.client,
        frame_no: frag.frame_no,
        step: frag.step,
        flags: frag.flags,
        single_fragment: frag.frag_count == 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(payload: Vec<u8>) -> WireMsg {
        WireMsg {
            client: 3,
            frame_no: 42,
            step: ServiceKind::Primary,
            emit_micros: 123_456,
            return_port: 40_123,
            trace_id: (3u64 << 32) | 42,
            flags: wire::FLAG_SAMPLED,
            sent_micros: 123_500,
            payload: Bytes::from(payload),
        }
    }

    #[test]
    fn v2_round_trip_uncompressed() {
        let m = msg((0..200u32).map(|i| (i * 7) as u8).collect());
        let (dgrams, codec) = encode_msg(&m, false, FrameKind::DctKey, 0);
        assert_eq!(codec, CodecKind::None);
        assert_eq!(dgrams.len(), 1);
        match decode_any(&dgrams[0]).expect("valid") {
            Decoded::V2(frag, meta) => {
                assert_eq!(frag.client, 3);
                assert_eq!(frag.frame_no, 42);
                assert_eq!(frag.body, m.payload);
                assert_eq!(meta.kind, FrameKind::DctKey);
                assert_eq!(meta.codec, CodecKind::None);
                assert_eq!(meta.raw_len, m.payload.len() as u32);
            }
            other => panic!("expected v2, got {other:?}"),
        }
    }

    #[test]
    fn v2_round_trip_compressed() {
        let m = msg(vec![0u8; 4096]);
        let (dgrams, codec) = encode_msg(&m, true, FrameKind::Plain, 0);
        assert_eq!(codec, CodecKind::Rle);
        assert_eq!(dgrams.len(), 1);
        match decode_any(&dgrams[0]).expect("valid") {
            Decoded::V2(frag, meta) => {
                assert_eq!(meta.codec, CodecKind::Rle);
                assert_eq!(meta.raw_len, 4096);
                let raw = codec::for_kind(meta.codec)
                    .unwrap()
                    .decompress(&frag.body, meta.raw_len as usize)
                    .expect("decompress");
                assert_eq!(raw, vec![0u8; 4096]);
            }
            other => panic!("expected v2, got {other:?}"),
        }
    }

    #[test]
    fn v1_datagrams_pass_through() {
        let m = msg(vec![1, 2, 3]);
        let dgrams = wire::encode(&m);
        match decode_any(&dgrams[0]).expect("valid") {
            Decoded::V1(frag) => assert_eq!(frag.frame_no, 42),
            other => panic!("expected v1, got {other:?}"),
        }
    }

    #[test]
    fn any_byte_flip_is_caught_with_identity_recovery() {
        let m = msg(vec![7u8; 100]);
        let (dgrams, _) = encode_msg(&m, false, FrameKind::DctKey, 0);
        let clean = dgrams[0].to_vec();
        let inner_header = V2_ENVELOPE_BYTES..V2_ENVELOPE_BYTES + wire::HEADER_BYTES;
        let mut crc_failures = 0;
        for i in 0..clean.len() {
            let mut d = clean.clone();
            d[i] ^= 0x40;
            match decode_any(&d) {
                Ok(_) => panic!("flip at byte {i} accepted"),
                Err(IngestError::InvalidCrc { recovered }) => {
                    crc_failures += 1;
                    // Identity recovery reads the (unchecked) inner v1
                    // header: exact whenever the flip landed outside
                    // it; best-effort garbage-or-None when it landed
                    // inside (v1 carries no integrity of its own —
                    // that is the whole point of the v2 CRC).
                    if !inner_header.contains(&i) {
                        let id = recovered.expect("identity survives");
                        assert_eq!((id.client, id.frame_no), (3, 42));
                        assert!(id.single_fragment);
                    }
                }
                // A flip in the outer magic makes it foreign, not corrupt.
                Err(IngestError::Malformed(e)) => {
                    assert!(i < 4, "flip at byte {i} misclassified: {e}")
                }
            }
        }
        assert!(crc_failures >= clean.len() - 4);
    }

    #[test]
    fn bad_version_codec_kind_are_typed() {
        let m = msg(vec![7u8; 10]);
        let (dgrams, _) = encode_msg(&m, false, FrameKind::Plain, 0);
        // Patch a field then re-seal so the CRC passes and the typed
        // check is what rejects it.
        let patch = |idx: usize, val: u8| {
            let mut d = dgrams[0].to_vec();
            d[idx] = val;
            let crc = crc32(&d[8..]);
            d[4..8].copy_from_slice(&crc.to_be_bytes());
            decode_any(&d)
        };
        assert_eq!(
            patch(8, 3),
            Err(IngestError::Malformed(WireError::BadVersion))
        );
        assert_eq!(
            patch(9, 9),
            Err(IngestError::Malformed(WireError::BadCodec))
        );
        assert_eq!(
            patch(10, 7),
            Err(IngestError::Malformed(WireError::BadKind))
        );
    }
}
