//! Receive-side v2 state for one service socket: datagram ingestion
//! (CRC + envelope checks before anything is parsed) and post-
//! reassembly payload reconstruction (decompression). Sits *around*
//! the existing v1 [`Reassembler`](crate::runtime::wire::Reassembler),
//! which stays unchanged: `ingest` yields plain v1 fragments, `finish`
//! fixes up the reassembled message.

use std::collections::HashMap;

use bytes::Bytes;

use crate::runtime::wire::{Fragment, WireError, WireMsg};
use crate::wirev2::codec;
use crate::wirev2::envelope::{self, Decoded, IngestError, V2Meta};

/// Per-socket receive state: envelope metadata for messages currently
/// in flight through the reassembler, keyed like the reassembler's
/// pending map (`client, frame_no, step`). Bounded FIFO — an evicted
/// message's stale metadata costs nothing (its key is gone too).
#[derive(Debug, Default)]
pub struct RxState {
    meta: HashMap<(u16, u32, u8), V2Meta>,
    order: Vec<(u16, u32, u8)>,
}

impl RxState {
    /// Metadata entries retained; far above the reassembler's own
    /// pending cap, so eviction here only fires under floods.
    const MAX_META: usize = 1024;

    pub fn new() -> RxState {
        RxState::default()
    }

    /// Parse one datagram (v1 or v2). On success the returned fragment
    /// feeds the ordinary reassembler; envelope metadata is stashed
    /// until [`RxState::finish`]. Errors are typed so the caller can
    /// count `InvalidCrc` separately from structural garbage.
    pub fn ingest(&mut self, datagram: &[u8]) -> Result<Fragment, IngestError> {
        match envelope::decode_any(datagram)? {
            Decoded::V1(frag) => Ok(frag),
            Decoded::V2(frag, meta) => {
                let key = (frag.client, frag.frame_no, frag.step.index() as u8);
                if self.meta.insert(key, meta).is_none() {
                    self.order.push(key);
                    if self.order.len() > Self::MAX_META {
                        let victim = self.order.remove(0);
                        self.meta.remove(&victim);
                    }
                }
                Ok(frag)
            }
        }
    }

    /// Post-reassembly step: decompress the payload if the envelope
    /// said so, and surface the v2 metadata (delta kind + anchor) the
    /// pipeline needs. v1 messages pass through with
    /// [`V2Meta::plain`]. A payload that fails to decompress is a
    /// typed [`WireError::BadCodec`] — corrupt-but-CRC-valid input
    /// cannot exist, so this means a buggy or hostile sender.
    pub fn finish(&mut self, msg: WireMsg) -> Result<(WireMsg, V2Meta), WireError> {
        let key = (msg.client, msg.frame_no, msg.step.index() as u8);
        let meta = match self.meta.remove(&key) {
            Some(m) => {
                self.order.retain(|k| *k != key);
                m
            }
            None => V2Meta::plain(),
        };
        if let Some(c) = codec::for_kind(meta.codec) {
            let raw = c
                .decompress(&msg.payload, meta.raw_len as usize)
                .ok_or(WireError::BadCodec)?;
            return Ok((
                WireMsg {
                    payload: Bytes::from(raw),
                    ..msg
                },
                meta,
            ));
        }
        Ok((msg, meta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ServiceKind;
    use crate::runtime::wire::{self, Reassembler};
    use crate::wirev2::codec::CodecKind;
    use crate::wirev2::FrameKind;

    fn msg(frame_no: u32, payload: Vec<u8>) -> WireMsg {
        WireMsg {
            client: 1,
            frame_no,
            step: ServiceKind::Primary,
            emit_micros: 10,
            return_port: 9,
            trace_id: (1u64 << 32) | frame_no as u64,
            flags: 0,
            sent_micros: 11,
            payload: Bytes::from(payload),
        }
    }

    #[test]
    fn v2_compressed_message_reconstructs_through_reassembler() {
        let m = msg(5, vec![3u8; 2048]);
        let (dgrams, _) = envelope::encode_msg(&m, true, FrameKind::DctKey, 0);
        let mut rx = RxState::new();
        let mut re = Reassembler::new();
        let mut out = None;
        for d in &dgrams {
            let frag = rx.ingest(d).expect("valid datagram");
            if let Some(m) = re.offer(frag) {
                out = Some(rx.finish(m).expect("finish"));
            }
        }
        let (got, meta) = out.expect("message completed");
        assert_eq!(got.payload, m.payload);
        assert_eq!(meta.kind, FrameKind::DctKey);
        assert_eq!(meta.codec, CodecKind::Rle);
    }

    #[test]
    fn v1_message_finishes_as_plain() {
        let m = msg(6, vec![1, 2, 3]);
        let dgrams = wire::encode(&m);
        let mut rx = RxState::new();
        let mut re = Reassembler::new();
        let frag = rx.ingest(&dgrams[0]).expect("valid");
        let got = re.offer(frag).expect("single fragment");
        let (got, meta) = rx.finish(got).expect("finish");
        assert_eq!(got.payload, m.payload);
        assert_eq!(meta, V2Meta::plain());
    }

    #[test]
    fn corrupt_datagram_counted_not_parsed() {
        let m = msg(7, vec![9u8; 128]);
        let (dgrams, _) = envelope::encode_msg(&m, false, FrameKind::DctKey, 0);
        let mut d = dgrams[0].to_vec();
        let last = d.len() - 1;
        d[last] ^= 0xFF;
        let mut rx = RxState::new();
        match rx.ingest(&d) {
            Err(IngestError::InvalidCrc { recovered }) => {
                let id = recovered.expect("inner header intact");
                assert_eq!(id.frame_no, 7);
                assert!(id.single_fragment);
            }
            other => panic!("expected InvalidCrc, got {other:?}"),
        }
    }
}
