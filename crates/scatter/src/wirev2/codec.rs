//! Payload compression behind a trait, in the repo's shims spirit: a
//! dependency-free byte-level RLE codec. Negotiation is per *message*,
//! not per handshake: [`maybe_compress`] keeps the compressed form only
//! when it is strictly smaller (the envelope's codec id records the
//! outcome), so a codec that loses on some payload costs nothing but
//! the byte that says "stored raw".

/// A payload codec. Implementations must be deterministic and
/// self-contained (no allocator tricks, no external state): the DES
/// byte predictor runs the same code as the runtime send path.
pub trait Codec {
    /// Envelope codec id (must round-trip through [`CodecKind`]).
    fn id(&self) -> CodecKind;
    /// Compress `data`. May return something *larger* than the input —
    /// callers use [`maybe_compress`] for the store-if-smaller policy.
    fn compress(&self, data: &[u8]) -> Vec<u8>;
    /// Decompress `data`, expecting exactly `raw_len` output bytes.
    /// `None` on any malformation (truncated stream, length mismatch,
    /// output overrun) — corrupt input must never panic or produce a
    /// wrong-length payload.
    fn decompress(&self, data: &[u8], raw_len: usize) -> Option<Vec<u8>>;
}

/// Codec id as carried in the v2 envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CodecKind {
    /// Payload stored raw.
    None = 0,
    /// Byte-level run-length encoding ([`Rle`]).
    Rle = 1,
}

impl CodecKind {
    pub fn from_u8(v: u8) -> Option<CodecKind> {
        match v {
            0 => Some(CodecKind::None),
            1 => Some(CodecKind::Rle),
            _ => None,
        }
    }
}

/// Byte-level RLE. Stream = sequence of groups, each led by a control
/// byte `c`:
///
/// - `c < 0x80`: literal group — the next `c + 1` bytes are copied
///   verbatim (1..=128 literals).
/// - `c >= 0x80`: run group — the next byte repeats `(c - 0x80) + 3`
///   times (3..=130 copies; runs shorter than 3 never win).
#[derive(Debug, Clone, Copy, Default)]
pub struct Rle;

impl Codec for Rle {
    fn id(&self) -> CodecKind {
        CodecKind::Rle
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() / 2 + 8);
        let mut i = 0;
        let mut lit_start = i;
        while i < data.len() {
            // Measure the run starting here.
            let b = data[i];
            let mut run = 1;
            while i + run < data.len() && data[i + run] == b && run < 130 {
                run += 1;
            }
            if run >= 3 {
                flush_literals(&mut out, &data[lit_start..i]);
                out.push(0x80 + (run as u8 - 3));
                out.push(b);
                i += run;
                lit_start = i;
            } else {
                i += run;
            }
        }
        flush_literals(&mut out, &data[lit_start..]);
        out
    }

    fn decompress(&self, data: &[u8], raw_len: usize) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(raw_len);
        let mut i = 0;
        while i < data.len() {
            let c = data[i];
            i += 1;
            if c < 0x80 {
                let n = c as usize + 1;
                if i + n > data.len() || out.len() + n > raw_len {
                    return None;
                }
                out.extend_from_slice(&data[i..i + n]);
                i += n;
            } else {
                let n = (c - 0x80) as usize + 3;
                if i >= data.len() || out.len() + n > raw_len {
                    return None;
                }
                out.resize(out.len() + n, data[i]);
                i += 1;
            }
        }
        if out.len() != raw_len {
            return None;
        }
        Some(out)
    }
}

fn flush_literals(out: &mut Vec<u8>, mut lits: &[u8]) {
    while !lits.is_empty() {
        let n = lits.len().min(128);
        out.push(n as u8 - 1);
        out.extend_from_slice(&lits[..n]);
        lits = &lits[n..];
    }
}

/// Look up the codec for an envelope id ([`CodecKind::None`] yields no
/// codec — the payload is stored raw).
pub fn for_kind(kind: CodecKind) -> Option<&'static dyn Codec> {
    match kind {
        CodecKind::None => None,
        CodecKind::Rle => Some(&Rle),
    }
}

/// Store-if-smaller policy shared by the runtime send path and the DES
/// byte predictor: returns the codec id that won and the bytes to ship.
/// With `compress` off (or a losing codec) the payload ships raw under
/// [`CodecKind::None`].
pub fn maybe_compress(payload: &[u8], compress: bool) -> (CodecKind, Option<Vec<u8>>) {
    if !compress {
        return (CodecKind::None, None);
    }
    let c = Rle.compress(payload);
    if c.len() < payload.len() {
        (CodecKind::Rle, Some(c))
    } else {
        (CodecKind::None, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_misc() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![7],
            vec![7, 7],
            vec![7, 7, 7],
            vec![0; 1000],
            (0..=255u8).collect(),
            b"aaabbbcccabcabc".to_vec(),
            vec![1, 1, 1, 1, 2, 3, 3, 3, 3, 3, 4],
        ];
        for raw in cases {
            let enc = Rle.compress(&raw);
            let dec = Rle.decompress(&enc, raw.len()).expect("decompress");
            assert_eq!(dec, raw);
        }
    }

    #[test]
    fn long_runs_and_literals_cross_group_bounds() {
        let mut raw = vec![9u8; 500]; // crosses the 130-run cap
        raw.extend((0..300).map(|i| (i % 251) as u8)); // crosses the 128-literal cap
        let enc = Rle.compress(&raw);
        assert!(enc.len() < raw.len());
        assert_eq!(Rle.decompress(&enc, raw.len()).unwrap(), raw);
    }

    #[test]
    fn wrong_raw_len_rejected() {
        let enc = Rle.compress(&[5u8; 64]);
        assert!(Rle.decompress(&enc, 63).is_none());
        assert!(Rle.decompress(&enc, 65).is_none());
    }

    #[test]
    fn truncated_stream_rejected() {
        let raw = b"aaaaaabcdefgh".to_vec();
        let enc = Rle.compress(&raw);
        for cut in 0..enc.len() {
            assert!(
                Rle.decompress(&enc[..cut], raw.len()).is_none(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn store_if_smaller_falls_back_on_incompressible() {
        let raw: Vec<u8> = (0..200u32).map(|i| (i * 7 + 13) as u8).collect();
        let (kind, body) = maybe_compress(&raw, true);
        assert_eq!(kind, CodecKind::None);
        assert!(body.is_none());
        let (kind, body) = maybe_compress(&vec![0u8; 256], true);
        assert_eq!(kind, CodecKind::Rle);
        assert!(body.unwrap().len() < 256);
    }
}
