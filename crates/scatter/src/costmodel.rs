//! The calibrated cost model: per-service compute times, per-hop payload
//! sizes, and the stochastic model tying them to the paper's reported
//! numbers.
//!
//! We cannot run the authors' CUDA kernels, so the DES charges each
//! service a service-time sample drawn from a lognormal around a
//! calibrated base, scaled by the host GPU architecture (see
//! [`orchestra::GpuArch::speed_multiplier`]). Calibration anchors, all
//! from the paper:
//!
//! - single client on one edge machine: ≥25 FPS, E2E ≈40 ms (fig. 2);
//! - `primary` saturates at ≈240 ingress FPS (fig. 8) → ≈4.2 ms/frame;
//! - `sift` is the heaviest stage and serves double load (frame + fetch);
//! - cloud deployment: ≈18 FPS median, 64 % success, ≈+20 ms E2E (fig. 4);
//! - stateless `sift` grows the forwarded frame ≈180 KB → ≈480 KB (§5).

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimRng};

use crate::config::Mode;
use crate::message::ServiceKind;

/// Calibrated model constants. Everything an experiment might ablate is a
/// plain field; `Default` is the paper configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// Base service time per frame in ms on the E1 (GeForce RTX) baseline,
    /// indexed by [`ServiceKind::index`].
    pub base_ms: [f64; 5],
    /// Multiplicative lognormal sigma on every service-time sample
    /// (GPU kernel timing variation).
    pub sigma: f64,
    /// Time `sift` spends serving one feature-fetch request from
    /// `matching` (memory lookup + serialization) — scAtteR only.
    pub fetch_service_ms: f64,
    /// How long `matching` waits for `sift`'s feature response before
    /// discarding the frame — scAtteR only.
    pub fetch_timeout_ms: f64,
    /// How long `sift` keeps un-fetched frame state before eviction —
    /// scAtteR only. Long relative to the frame period: the service has
    /// no signal that `matching` gave up on a frame.
    pub state_timeout_ms: f64,
    /// In-memory size of one stored `sift` state entry, bytes: the
    /// extracted descriptors *plus* the frame's scale-space pyramid kept
    /// for matching's correlation step (a 720p float pyramid alone is
    /// tens of MB) — what makes sift's footprint balloon when matching
    /// stops fetching (fig. 2's memory panel).
    pub state_entry_bytes: usize,
    /// Extra one-way delay added when a hop is load-balanced across >1
    /// replica (Oakestra semantic-addressing overhead; §4 attributes a
    /// ≈30 % E2E elevation to balancing).
    pub lb_overhead_ms: f64,
    /// Fraction of a GPU service's duration also charged to the CPU
    /// (driver + pre/post-processing threads).
    pub gpu_cpu_fraction: f64,
    /// Container resident-set baseline per service, GB.
    pub base_memory_gb: [f64; 5],
    /// Working-set bytes per frame occupying a sidecar queue slot
    /// (decode + GPU staging buffers held while queued) — scAtteR++.
    pub queue_slot_bytes: usize,
    /// scAtteR++ staleness threshold (paper: 100 ms, "in line with the
    /// maximum tolerable latency in XR applications").
    pub threshold_ms: f64,
    /// Per-frame camera/encoder emission jitter bound (uniform, ms):
    /// real smartphone capture is never perfectly periodic, which is what
    /// keeps concurrent clients from phase-locking against each other.
    pub emit_jitter_ms: f64,
    /// Virtualized machines (the cloud VM): probability that a service
    /// execution hits a hypervisor-scheduling spike, and the spike's
    /// wall-time multiplier range. The paper attributes the cloud QoS gap
    /// to virtualization + arch mismatch rather than raw capacity.
    pub virt_spike_prob: f64,
    pub virt_spike_mult: (f64, f64),
    /// All machines: probability of a mild GPU/driver hiccup per
    /// execution (page migration, context switch, thermal event) and its
    /// wall-time multiplier range. This is what keeps even a single
    /// client at ≈85 % frame success under scAtteR's drop-on-busy policy
    /// (the paper's single-client anchor), while scAtteR++'s queue
    /// absorbs the same hiccups.
    pub edge_spike_prob: f64,
    pub edge_spike_mult: (f64, f64),
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            //         primary sift  encoding lsh  matching
            base_ms: [4.2, 10.0, 6.0, 4.0, 9.0],
            sigma: 0.08,
            fetch_service_ms: 2.5,
            fetch_timeout_ms: 15.0,
            state_timeout_ms: 10_000.0,
            state_entry_bytes: 32 * 1024 * 1024,
            lb_overhead_ms: 1.2,
            gpu_cpu_fraction: 0.15,
            base_memory_gb: [0.35, 0.9, 0.6, 0.5, 0.7],
            queue_slot_bytes: 24 * 1024 * 1024,
            threshold_ms: 100.0,
            emit_jitter_ms: 2.0,
            virt_spike_prob: 0.10,
            virt_spike_mult: (1.8, 3.0),
            edge_spike_prob: 0.06,
            edge_spike_mult: (2.2, 4.5),
        }
    }
}

impl CostModel {
    /// Sample the compute time for `kind` on a machine with the given
    /// architecture speed multiplier. The lognormal is mean-corrected so
    /// the multiplier scales the *mean*, not the median.
    pub fn sample_service_time(
        &self,
        kind: ServiceKind,
        arch_multiplier: f64,
        virtualized: bool,
        rng: &mut SimRng,
    ) -> SimDuration {
        let base = self.base_ms[kind.index()] * arch_multiplier;
        let mut noisy = base * (rng.normal_with(-self.sigma * self.sigma / 2.0, self.sigma)).exp();
        let (prob, mult) = if virtualized {
            (self.virt_spike_prob, self.virt_spike_mult)
        } else {
            (self.edge_spike_prob, self.edge_spike_mult)
        };
        if rng.bernoulli(prob) {
            noisy *= rng.uniform(mult.0, mult.1);
        }
        SimDuration::from_millis_f64(noisy)
    }

    /// Sample the fetch-service time on `sift`.
    pub fn sample_fetch_time(&self, arch_multiplier: f64, rng: &mut SimRng) -> SimDuration {
        let noisy = self.fetch_service_ms
            * arch_multiplier
            * (rng.normal_with(-self.sigma * self.sigma / 2.0, self.sigma)).exp();
        SimDuration::from_millis_f64(noisy)
    }

    /// Payload bytes on the wire *into* `step`, given the pipeline mode.
    /// The stateless redesign makes every post-`sift` hop carry the
    /// embedded frame state.
    pub fn payload_into(&self, step: ServiceKind, mode: Mode) -> usize {
        let stateless = mode.stateless_sift();
        match step {
            // Client's encoded camera frame into the ingress.
            ServiceKind::Primary => 150_000,
            // Grayscaled, dimension-reduced frame — *uncompressed* pixel
            // data (primary decodes the client's stream and does not
            // re-encode), which is why pushing this hop across the
            // Internet (fig. 11's hybrid split) is so much costlier than
            // the client's compressed uplink.
            ServiceKind::Sift => 310_000,
            // Stateful: descriptor set only; stateless: descriptors +
            // embedded frame state (≈180 KB → ≈480 KB, §5).
            ServiceKind::Encoding => {
                if stateless {
                    480_000
                } else {
                    180_000
                }
            }
            // Stateful: compact Fisher vectors + frame reference (the
            // state stays behind in `sift`); stateless: state travels.
            ServiceKind::Lsh | ServiceKind::Matching => {
                if stateless {
                    480_000
                } else {
                    30_000
                }
            }
        }
    }

    /// Result payload returned to the client (bounding boxes + frame id).
    pub fn result_bytes(&self) -> usize {
        60_000
    }

    /// Fetch request / response sizes on the `matching → sift` loop.
    pub fn fetch_request_bytes(&self) -> usize {
        2_000
    }

    pub fn fetch_response_bytes(&self) -> usize {
        200_000
    }

    pub fn threshold(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.threshold_ms)
    }

    pub fn fetch_timeout(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.fetch_timeout_ms)
    }

    pub fn state_timeout(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.state_timeout_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_saturation_near_240_fps() {
        let m = CostModel::default();
        let per_frame = m.base_ms[ServiceKind::Primary.index()];
        let fps = 1000.0 / per_frame;
        assert!((fps - 238.0).abs() < 15.0, "primary max FPS {fps}");
    }

    #[test]
    fn single_client_pipeline_sum_near_paper_e2e() {
        // Sum of stages + fetch loop ≈ 40 ms (fig. 2's single-client E2E).
        let m = CostModel::default();
        let sum: f64 = m.base_ms.iter().sum::<f64>() + m.fetch_service_ms;
        assert!(
            (30.0..=45.0).contains(&sum),
            "pipeline compute sum {sum} ms out of calibration band"
        );
    }

    #[test]
    fn sift_is_heaviest() {
        let m = CostModel::default();
        let sift = m.base_ms[ServiceKind::Sift.index()];
        for (i, &b) in m.base_ms.iter().enumerate() {
            if i != ServiceKind::Sift.index() {
                assert!(sift >= b, "sift must be the heaviest stage");
            }
        }
    }

    #[test]
    fn stateless_frames_grow_as_reported() {
        let m = CostModel::default();
        let before = m.payload_into(ServiceKind::Encoding, Mode::Scatter);
        let after = m.payload_into(ServiceKind::Encoding, Mode::ScatterPP);
        assert_eq!(before, 180_000);
        assert_eq!(after, 480_000);
    }

    #[test]
    fn sampled_times_scale_with_arch() {
        let m = CostModel::default();
        let mut rng = SimRng::new(1);
        let n = 5000;
        let mean = |mult: f64, rng: &mut SimRng| {
            (0..n)
                .map(|_| {
                    m.sample_service_time(ServiceKind::Sift, mult, false, rng)
                        .as_millis_f64()
                })
                .sum::<f64>()
                / n as f64
        };
        let e1 = mean(1.0, &mut rng);
        let e2 = mean(0.8, &mut rng);
        let cloud = mean(1.35, &mut rng);
        // Hiccup spikes inflate the mean uniformly, so the architecture
        // multipliers must survive as *ratios*.
        assert!((e2 / e1 - 0.8).abs() < 0.03, "E2/E1 ratio {}", e2 / e1);
        assert!(
            (cloud / e1 - 1.35).abs() < 0.05,
            "cloud/E1 ratio {}",
            cloud / e1
        );
        // And the baseline mean stays near base × spike inflation.
        let m = CostModel::default();
        let infl =
            1.0 + m.edge_spike_prob * ((m.edge_spike_mult.0 + m.edge_spike_mult.1) / 2.0 - 1.0);
        assert!(
            (e1 - 10.0 * infl).abs() < 0.5,
            "E1 mean {e1} vs expected {}",
            10.0 * infl
        );
    }

    #[test]
    fn samples_are_positive_and_vary() {
        let m = CostModel::default();
        let mut rng = SimRng::new(2);
        let a = m.sample_service_time(ServiceKind::Lsh, 1.0, false, &mut rng);
        let b = m.sample_service_time(ServiceKind::Lsh, 1.0, false, &mut rng);
        assert!(a.as_nanos() > 0 && b.as_nanos() > 0);
        assert_ne!(a, b, "lognormal samples should differ");
    }

    #[test]
    fn threshold_matches_paper() {
        assert_eq!(CostModel::default().threshold().as_millis(), 100);
    }
}
