//! The AR client emulator.
//!
//! Each client replays the 10 s / 30 FPS / 720p workplace video in a loop
//! (the paper's containerized NUC clients), streaming one frame every
//! 33.3 ms with a per-client phase offset, and records QoS on the frames
//! that come back: FPS, end-to-end latency, jitter, and success rate.

use metrics::{JitterMeter, RateMeter, Summary};
use simcore::{SimDuration, SimTime};

/// Inter-frame period of the 30 FPS source.
pub const FRAME_PERIOD: SimDuration = SimDuration::from_nanos(33_333_333);

/// O(1)-memory per-client QoS state for streaming-metrics runs
/// (DESIGN.md §14). Mirrors the exact collectors' arithmetic — same
/// grid-jitter formula as [`JitterMeter::record_grid`], same
/// `[start, end)` window convention as [`RateMeter::rate_over`] — but
/// folds each completion into counters instead of per-event vectors,
/// so a 1M-client world carries a few dozen bytes per client instead
/// of an unbounded `Vec` per metric.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamQos {
    /// Completions inside the measurement window (`start <= t < end`).
    pub completed_in_window: u64,
    /// Previous completion arrival (grid-jitter state).
    last_arrival: Option<SimTime>,
    /// Sum / count of |off-grid excess| in ms — mean equals
    /// `JitterMeter::jitter_ms` exactly.
    jitter_sum_ms: f64,
    jitter_n: u64,
    /// Highest frame number completed so far (freeze-gap state).
    prev_frame: Option<u64>,
    /// Longest gap of missing frames between *in-order* completions —
    /// equals `longest_freeze` when completions arrive in frame order
    /// (the overwhelmingly common case), a lower bound otherwise.
    pub max_freeze: u64,
}

impl StreamQos {
    /// Per-client mean |Δ grid| jitter in ms.
    pub fn jitter_ms(&self) -> f64 {
        if self.jitter_n == 0 {
            0.0
        } else {
            self.jitter_sum_ms / self.jitter_n as f64
        }
    }
}

/// One emulated client and its QoS collectors.
pub struct ClientState {
    pub id: usize,
    /// First emission instant (staggered arrivals in fig. 12).
    pub start_at: SimTime,
    /// Frames emitted so far.
    pub emitted: u64,
    /// Frames whose processed result came back.
    pub completed: u64,
    /// Frames emitted after the warmup boundary (success-rate base).
    pub emitted_measured: u64,
    /// Completions after the warmup boundary.
    pub completed_measured: u64,
    /// Completed-frame arrival instants → FPS.
    pub rate: RateMeter,
    /// Δ inter-frame receive-time jitter.
    pub jitter: JitterMeter,
    /// End-to-end latency samples, ms.
    pub e2e_ms: Summary,
    /// Frame numbers of completed frames (for gap statistics).
    pub completed_frames: Vec<u64>,
    /// Streaming-metrics state. Only fed when the run's
    /// [`ScaleConfig::streaming`](crate::config::ScaleConfig) is on; the
    /// exact collectors above then stay empty (an empty `Vec`/`Summary`
    /// allocates nothing, so the dormant fields are free).
    pub stream: StreamQos,
}

impl ClientState {
    pub fn new(id: usize, start_at: SimTime) -> Self {
        ClientState {
            id,
            start_at,
            emitted: 0,
            completed: 0,
            emitted_measured: 0,
            completed_measured: 0,
            rate: RateMeter::new(),
            jitter: JitterMeter::new(),
            e2e_ms: Summary::new(),
            completed_frames: Vec::new(),
            stream: StreamQos::default(),
        }
    }

    /// Instant of the next frame emission.
    pub fn next_emit_at(&self) -> SimTime {
        self.start_at + FRAME_PERIOD * self.emitted
    }

    /// Record a processed frame arriving back at `now`, emitted at
    /// `emitted_at`. Frames arriving during warmup are recorded for rate
    /// purposes but the caller decides the aggregation window.
    pub fn record_completion(&mut self, frame_no: u64, emitted_at: SimTime, now: SimTime) {
        self.completed += 1;
        self.rate.record(now);
        self.completed_frames.push(frame_no);
        self.jitter.record_grid(now, FRAME_PERIOD);
        self.e2e_ms
            .record(now.saturating_since(emitted_at).as_millis_f64());
    }

    /// Streaming counterpart of [`ClientState::record_completion`]:
    /// folds the completion into [`StreamQos`] instead of the per-event
    /// vectors, using the `[window_start, window_end)` convention of
    /// [`RateMeter::rate_over`]. Returns the end-to-end latency in ms so
    /// the world can feed its run-wide histogram.
    pub fn record_completion_streaming(
        &mut self,
        frame_no: u64,
        emitted_at: SimTime,
        now: SimTime,
        window_start: SimTime,
        window_end: SimTime,
    ) -> f64 {
        self.completed += 1;
        if now >= window_start && now < window_end {
            self.stream.completed_in_window += 1;
        }
        // Identical arithmetic to JitterMeter::record_grid.
        if let Some(prev) = self.stream.last_arrival {
            let gap = now.saturating_since(prev).as_millis_f64();
            let p = FRAME_PERIOD.as_millis_f64();
            if p > 0.0 && gap > 0.0 {
                let excess = gap - p * (gap / p).round();
                self.stream.jitter_sum_ms += excess.abs();
                self.stream.jitter_n += 1;
            }
        }
        self.stream.last_arrival = Some(now);
        // Freeze gaps over the monotone frame subsequence.
        if let Some(prev) = self.stream.prev_frame {
            if frame_no > prev {
                self.stream.max_freeze = self.stream.max_freeze.max(frame_no - prev - 1);
                self.stream.prev_frame = Some(frame_no);
            }
        } else {
            self.stream.prev_frame = Some(frame_no);
        }
        now.saturating_since(emitted_at).as_millis_f64()
    }

    /// Longest run of consecutive frame numbers missing between two
    /// completions — how long the user's augmentation freezes. Bursty
    /// loss concentrates misses into long freezes even at equal average
    /// loss.
    pub fn longest_freeze(&self) -> u64 {
        let mut frames = self.completed_frames.clone();
        frames.sort_unstable();
        frames
            .windows(2)
            .map(|w| w[1].saturating_sub(w[0] + 1))
            .max()
            .unwrap_or(0)
    }

    /// Success rate over the measurement window (post-warmup).
    pub fn success_rate(&self) -> f64 {
        if self.emitted_measured == 0 {
            0.0
        } else {
            self.completed_measured as f64 / self.emitted_measured as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_period_is_30fps() {
        let fps = 1e9 / FRAME_PERIOD.as_nanos() as f64;
        assert!((fps - 30.0).abs() < 0.01, "{fps}");
    }

    #[test]
    fn emission_schedule_is_periodic() {
        let mut c = ClientState::new(0, SimTime::from_millis(500));
        assert_eq!(c.next_emit_at(), SimTime::from_millis(500));
        c.emitted = 3;
        let t = c.next_emit_at();
        assert_eq!(t.as_millis(), 500 + 99); // 3 × 33.33 ms
    }

    #[test]
    fn completion_updates_all_meters() {
        let mut c = ClientState::new(0, SimTime::ZERO);
        c.emitted = 2;
        c.emitted_measured = 2;
        c.record_completion(0, SimTime::from_millis(0), SimTime::from_millis(40));
        c.record_completion(1, SimTime::from_millis(33), SimTime::from_millis(75));
        c.completed_measured = 2;
        assert_eq!(c.completed, 2);
        assert_eq!(c.success_rate(), 1.0);
        assert_eq!(c.e2e_ms.samples(), &[40.0, 42.0]);
    }

    #[test]
    fn longest_freeze_finds_gaps() {
        let mut c = ClientState::new(0, SimTime::ZERO);
        for f in [0u64, 1, 2, 9, 10, 13] {
            c.record_completion(f, SimTime::ZERO, SimTime::from_millis(40));
        }
        // Missing 3..=8 (6 frames) and 11..=12 (2 frames).
        assert_eq!(c.longest_freeze(), 6);
    }

    #[test]
    fn success_rate_handles_zero_emissions() {
        let c = ClientState::new(0, SimTime::ZERO);
        assert_eq!(c.success_rate(), 0.0);
    }

    #[test]
    fn streaming_mirrors_exact_collectors() {
        let mut exact = ClientState::new(0, SimTime::ZERO);
        let mut streaming = ClientState::new(1, SimTime::ZERO);
        let (win_start, win_end) = (SimTime::from_millis(50), SimTime::from_secs(1));
        let arrivals: [(u64, u64, u64); 5] = [
            (0, 0, 40),
            (1, 33, 75),
            (2, 66, 112),
            (6, 200, 245),
            (7, 233, 270),
        ];
        let mut e2e_streamed = Vec::new();
        for &(frame, emitted_ms, now_ms) in &arrivals {
            let (emitted, now) = (
                SimTime::from_millis(emitted_ms),
                SimTime::from_millis(now_ms),
            );
            exact.record_completion(frame, emitted, now);
            e2e_streamed.push(
                streaming.record_completion_streaming(frame, emitted, now, win_start, win_end),
            );
        }
        // 4 of the 5 arrivals land in [50 ms, 1 s); the window count must
        // agree with the exact meter's rate over the same window.
        assert_eq!(streaming.stream.completed_in_window, 4);
        let secs = win_end.saturating_since(win_start).as_secs_f64();
        let exact_rate = exact.rate.rate_over(win_start, win_end);
        assert!((exact_rate - 4.0 / secs).abs() < 1e-12);
        assert_eq!(streaming.stream.jitter_ms(), exact.jitter.jitter_ms());
        assert_eq!(streaming.stream.max_freeze, exact.longest_freeze());
        assert_eq!(e2e_streamed, exact.e2e_ms.samples());
        // The exact collectors stayed empty on the streaming client.
        assert!(streaming.completed_frames.is_empty());
        assert!(streaming.e2e_ms.samples().is_empty());
    }
}
