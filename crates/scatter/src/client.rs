//! The AR client emulator.
//!
//! Each client replays the 10 s / 30 FPS / 720p workplace video in a loop
//! (the paper's containerized NUC clients), streaming one frame every
//! 33.3 ms with a per-client phase offset, and records QoS on the frames
//! that come back: FPS, end-to-end latency, jitter, and success rate.

use metrics::{JitterMeter, RateMeter, Summary};
use simcore::{SimDuration, SimTime};

/// Inter-frame period of the 30 FPS source.
pub const FRAME_PERIOD: SimDuration = SimDuration::from_nanos(33_333_333);

/// One emulated client and its QoS collectors.
pub struct ClientState {
    pub id: usize,
    /// First emission instant (staggered arrivals in fig. 12).
    pub start_at: SimTime,
    /// Frames emitted so far.
    pub emitted: u64,
    /// Frames whose processed result came back.
    pub completed: u64,
    /// Frames emitted after the warmup boundary (success-rate base).
    pub emitted_measured: u64,
    /// Completions after the warmup boundary.
    pub completed_measured: u64,
    /// Completed-frame arrival instants → FPS.
    pub rate: RateMeter,
    /// Δ inter-frame receive-time jitter.
    pub jitter: JitterMeter,
    /// End-to-end latency samples, ms.
    pub e2e_ms: Summary,
    /// Frame numbers of completed frames (for gap statistics).
    pub completed_frames: Vec<u64>,
}

impl ClientState {
    pub fn new(id: usize, start_at: SimTime) -> Self {
        ClientState {
            id,
            start_at,
            emitted: 0,
            completed: 0,
            emitted_measured: 0,
            completed_measured: 0,
            rate: RateMeter::new(),
            jitter: JitterMeter::new(),
            e2e_ms: Summary::new(),
            completed_frames: Vec::new(),
        }
    }

    /// Instant of the next frame emission.
    pub fn next_emit_at(&self) -> SimTime {
        self.start_at + FRAME_PERIOD * self.emitted
    }

    /// Record a processed frame arriving back at `now`, emitted at
    /// `emitted_at`. Frames arriving during warmup are recorded for rate
    /// purposes but the caller decides the aggregation window.
    pub fn record_completion(&mut self, frame_no: u64, emitted_at: SimTime, now: SimTime) {
        self.completed += 1;
        self.rate.record(now);
        self.completed_frames.push(frame_no);
        self.jitter.record_grid(now, FRAME_PERIOD);
        self.e2e_ms
            .record(now.saturating_since(emitted_at).as_millis_f64());
    }

    /// Longest run of consecutive frame numbers missing between two
    /// completions — how long the user's augmentation freezes. Bursty
    /// loss concentrates misses into long freezes even at equal average
    /// loss.
    pub fn longest_freeze(&self) -> u64 {
        let mut frames = self.completed_frames.clone();
        frames.sort_unstable();
        frames
            .windows(2)
            .map(|w| w[1].saturating_sub(w[0] + 1))
            .max()
            .unwrap_or(0)
    }

    /// Success rate over the measurement window (post-warmup).
    pub fn success_rate(&self) -> f64 {
        if self.emitted_measured == 0 {
            0.0
        } else {
            self.completed_measured as f64 / self.emitted_measured as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_period_is_30fps() {
        let fps = 1e9 / FRAME_PERIOD.as_nanos() as f64;
        assert!((fps - 30.0).abs() < 0.01, "{fps}");
    }

    #[test]
    fn emission_schedule_is_periodic() {
        let mut c = ClientState::new(0, SimTime::from_millis(500));
        assert_eq!(c.next_emit_at(), SimTime::from_millis(500));
        c.emitted = 3;
        let t = c.next_emit_at();
        assert_eq!(t.as_millis(), 500 + 99); // 3 × 33.33 ms
    }

    #[test]
    fn completion_updates_all_meters() {
        let mut c = ClientState::new(0, SimTime::ZERO);
        c.emitted = 2;
        c.emitted_measured = 2;
        c.record_completion(0, SimTime::from_millis(0), SimTime::from_millis(40));
        c.record_completion(1, SimTime::from_millis(33), SimTime::from_millis(75));
        c.completed_measured = 2;
        assert_eq!(c.completed, 2);
        assert_eq!(c.success_rate(), 1.0);
        assert_eq!(c.e2e_ms.samples(), &[40.0, 42.0]);
    }

    #[test]
    fn longest_freeze_finds_gaps() {
        let mut c = ClientState::new(0, SimTime::ZERO);
        for f in [0u64, 1, 2, 9, 10, 13] {
            c.record_completion(f, SimTime::ZERO, SimTime::from_millis(40));
        }
        // Missing 3..=8 (6 frames) and 11..=12 (2 frames).
        assert_eq!(c.longest_freeze(), 6);
    }

    #[test]
    fn success_rate_handles_zero_emissions() {
        let c = ClientState::new(0, SimTime::ZERO);
        assert_eq!(c.success_rate(), 0.0);
    }
}
