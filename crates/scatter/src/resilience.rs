//! The resilience control plane: failure detection knobs, the client's
//! response-deadline/retry policy, and the graceful-degradation ladder.
//!
//! The paper's two dominant failure modes are replica loss (§3.2's
//! detect-and-redeploy loop) and overload collapse (FPS falls off a
//! cliff past ~4 clients, §4). This module holds the *policy* for
//! surviving both, shared verbatim by the DES ([`crate::world`]) and
//! the real-UDP runtime ([`crate::runtime`]):
//!
//! - [`DetectionConfig`] tunes the heartbeat/φ-accrual failure detector
//!   ([`orchestra::FailureDetector`]) that drives automatic redeploy
//!   and sticky-flow rebinding;
//! - [`DeadlineConfig`] gives clients a bounded-retry policy for lost
//!   responses, so a crashed replica costs a detection window instead
//!   of a permanently stuck frame stream;
//! - [`LadderConfig`] + [`OverloadController`] turn the scalability
//!   cliff into a controlled quality/latency trade: full resolution →
//!   pyramid-downscaled frames → halved frame rate → admission-denied
//!   with an explicit NACK, stepped with hysteresis off the sidecar's
//!   backpressure signal.
//!
//! Everything here is pure state machines — no clocks, no RNG, no I/O —
//! so both planes stay exactly as deterministic as their drivers.

use std::sync::Once;

use simcore::SimDuration;

/// Failure-detection tuning (heartbeat cadence + suspicion threshold).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionConfig {
    /// Nominal heartbeat interval.
    pub hb_interval: SimDuration,
    /// Uniform jitter added to each heartbeat send (drawn from a
    /// dedicated RNG stream in the DES so runs stay bit-identical).
    pub hb_jitter: SimDuration,
    /// Suspect after `suspect_factor × expected interval` of silence.
    pub suspect_factor: f64,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        DetectionConfig {
            hb_interval: SimDuration::from_millis(50),
            hb_jitter: SimDuration::from_millis(5),
            suspect_factor: 3.0,
        }
    }
}

impl DetectionConfig {
    /// The detector-math view of this config.
    pub fn detector(&self) -> orchestra::DetectorConfig {
        orchestra::DetectorConfig {
            interval_ms: self.hb_interval.as_millis_f64(),
            suspect_factor: self.suspect_factor,
            alpha: 0.2,
        }
    }

    /// Apply the `SCATTER_HB_INTERVAL` / `SCATTER_HB_SUSPECT` env
    /// overrides (warn-once on invalid values, keep the defaults).
    pub fn from_env() -> Self {
        let mut cfg = DetectionConfig::default();
        if let Some(ms) = hb_interval_ms_env() {
            cfg.hb_interval = SimDuration::from_nanos((ms * 1e6) as u64);
        }
        if let Some(f) = hb_suspect_env() {
            cfg.suspect_factor = f;
        }
        cfg
    }
}

/// Heartbeat interval override in milliseconds: `SCATTER_HB_INTERVAL`.
/// Unparsable or non-positive values warn once on stderr and fall back
/// to the built-in default.
pub fn hb_interval_ms_env() -> Option<f64> {
    static WARN: Once = Once::new();
    match std::env::var("SCATTER_HB_INTERVAL") {
        Ok(s) => match s.trim().parse::<f64>() {
            Ok(v) if v > 0.0 && v.is_finite() => Some(v),
            _ => {
                WARN.call_once(|| {
                    eprintln!(
                        "warning: invalid SCATTER_HB_INTERVAL={s:?} (want positive milliseconds); \
                         using default 50"
                    );
                });
                None
            }
        },
        Err(_) => None,
    }
}

/// Suspicion-threshold override in missed intervals: `SCATTER_HB_SUSPECT`.
/// Values must exceed 1.0 (suspecting within one nominal interval would
/// flap on ordinary jitter); invalid values warn once and are ignored.
pub fn hb_suspect_env() -> Option<f64> {
    static WARN: Once = Once::new();
    match std::env::var("SCATTER_HB_SUSPECT") {
        Ok(s) => match s.trim().parse::<f64>() {
            Ok(v) if v > 1.0 && v.is_finite() => Some(v),
            _ => {
                WARN.call_once(|| {
                    eprintln!(
                        "warning: invalid SCATTER_HB_SUSPECT={s:?} (want a factor > 1); \
                         using default 3"
                    );
                });
                None
            }
        },
        Err(_) => None,
    }
}

/// Client-side response deadline + bounded retry with exponential
/// backoff. A frame whose result has not returned within `deadline` is
/// given up on (late arrivals are re-attributed, not double-counted)
/// and re-captured up to `max_retries` times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineConfig {
    /// How long the client waits for a frame's result.
    pub deadline: SimDuration,
    /// Re-emissions after the original attempt.
    pub max_retries: u32,
    /// Backoff before retry `k` is `backoff × 2^k`.
    pub backoff: SimDuration,
}

impl Default for DeadlineConfig {
    fn default() -> Self {
        DeadlineConfig {
            deadline: SimDuration::from_millis(250),
            max_retries: 2,
            backoff: SimDuration::from_millis(40),
        }
    }
}

impl DeadlineConfig {
    /// Wait before re-emitting attempt `attempt` (1-based: the first
    /// retry is attempt 1).
    pub fn retry_delay(&self, attempt: u32) -> SimDuration {
        self.backoff * (1u64 << attempt.saturating_sub(1).min(16))
    }
}

/// The degradation ladder's rungs, mildest first.
pub const LADDER_FULL: u8 = 0;
/// Rung 1: the client sends pyramid-downscaled frames (half resolution
/// per side via [`vision`]'s pyramid; the payload and the GPU work both
/// shrink).
pub const LADDER_DOWNSCALE: u8 = 1;
/// Rung 2: downscaled *and* halved frame rate.
pub const LADDER_HALF_RATE: u8 = 2;
/// Rung 3: admission denied — the client gets an explicit NACK per
/// frame instead of silently losing it past the knee.
pub const LADDER_DENIED: u8 = 3;

/// Overload-controller tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderConfig {
    /// Controller tick period (backpressure sampling cadence).
    pub tick: SimDuration,
    /// Escalate while the backpressure signal sits above this.
    pub high_water_ms: f64,
    /// Relax only once it has fallen below this (hysteresis band).
    pub low_water_ms: f64,
    /// Consecutive over-water ticks required per escalation step.
    pub down_ticks: u32,
    /// Consecutive under-water ticks required per relax step (recovery
    /// is deliberately slower than degradation).
    pub up_ticks: u32,
    /// Payload multiplier at [`LADDER_DOWNSCALE`] and above (a half-res
    /// pyramid level carries ≈ a quarter of the pixels plus headers).
    pub downscale_payload: f64,
    /// Service-time multiplier for downscaled frames.
    pub downscale_compute: f64,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            tick: SimDuration::from_millis(100),
            high_water_ms: 60.0,
            low_water_ms: 25.0,
            down_ticks: 2,
            up_ticks: 12,
            downscale_payload: 0.35,
            downscale_compute: 0.55,
        }
    }
}

/// One applied ladder transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderStep {
    pub client: usize,
    pub level: u8,
}

/// The overload controller: per-client ladder levels stepped off a
/// scalar backpressure signal (the worst sidecar's projected wait) with
/// hysteresis. Pure and deterministic — escalation spreads the mildest
/// rung across clients (highest id first) before anyone is pushed
/// deeper, and relaxation unwinds in exactly the reverse order.
#[derive(Debug, Clone)]
pub struct OverloadController {
    cfg: LadderConfig,
    levels: Vec<u8>,
    over: u32,
    under: u32,
    /// Total applied transitions (both directions).
    pub steps: u64,
    /// Deepest rung ever reached.
    pub max_level_seen: u8,
}

impl OverloadController {
    pub fn new(cfg: LadderConfig, clients: usize) -> Self {
        OverloadController {
            cfg,
            levels: vec![LADDER_FULL; clients],
            over: 0,
            under: 0,
            steps: 0,
            max_level_seen: LADDER_FULL,
        }
    }

    pub fn config(&self) -> &LadderConfig {
        &self.cfg
    }

    /// Current rung for `client`.
    pub fn level(&self, client: usize) -> u8 {
        self.levels.get(client).copied().unwrap_or(LADDER_FULL)
    }

    pub fn levels(&self) -> &[u8] {
        &self.levels
    }

    /// Feed one backpressure sample; returns the transitions applied
    /// this tick (empty almost always — hysteresis).
    pub fn tick(&mut self, backpressure_ms: f64) -> Vec<LadderStep> {
        let mut out = Vec::new();
        if backpressure_ms > self.cfg.high_water_ms {
            self.under = 0;
            self.over += 1;
            if self.over >= self.cfg.down_ticks {
                self.over = 0;
                // The further past the high-water mark, the more steps
                // at once: a collapsing queue must not wait N ticks for
                // N clients to degrade one by one.
                let n = ((backpressure_ms / self.cfg.high_water_ms) as usize)
                    .clamp(1, self.levels.len().max(1));
                for _ in 0..n {
                    match self.escalate() {
                        Some(step) => out.push(step),
                        None => break,
                    }
                }
            }
        } else if backpressure_ms < self.cfg.low_water_ms {
            self.over = 0;
            self.under += 1;
            if self.under >= self.cfg.up_ticks {
                self.under = 0;
                if let Some(step) = self.relax() {
                    out.push(step);
                }
            }
        } else {
            // In the deadband: hold position.
            self.over = 0;
            self.under = 0;
        }
        out
    }

    /// Push the least-degraded client (ties: highest id) one rung down.
    fn escalate(&mut self) -> Option<LadderStep> {
        let (client, &lvl) = self
            .levels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l < LADDER_DENIED)
            .min_by_key(|&(i, &l)| (l, std::cmp::Reverse(i)))?;
        self.levels[client] = lvl + 1;
        self.steps += 1;
        self.max_level_seen = self.max_level_seen.max(lvl + 1);
        Some(LadderStep {
            client,
            level: lvl + 1,
        })
    }

    /// Pull the most-degraded client (ties: highest id — the inverse of
    /// [`Self::escalate`]) one rung back up.
    fn relax(&mut self) -> Option<LadderStep> {
        let (client, &lvl) = self
            .levels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > LADDER_FULL)
            .max_by_key(|&(i, &l)| (l, i))?;
        self.levels[client] = lvl - 1;
        self.steps += 1;
        Some(LadderStep {
            client,
            level: lvl - 1,
        })
    }

    /// Emission period multiplier for a client at its current rung.
    pub fn period_factor(&self, client: usize) -> u64 {
        if self.level(client) >= LADDER_HALF_RATE {
            2
        } else {
            1
        }
    }
}

/// The whole plane's configuration; `None` fields disable that leg, and
/// the all-`None` default is byte-identical to a pre-resilience run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceConfig {
    pub detection: Option<DetectionConfig>,
    pub deadline: Option<DeadlineConfig>,
    pub ladder: Option<LadderConfig>,
}

impl ResilienceConfig {
    pub fn enabled(&self) -> bool {
        self.detection.is_some() || self.deadline.is_some() || self.ladder.is_some()
    }

    pub fn with_detection(mut self, d: DetectionConfig) -> Self {
        self.detection = Some(d);
        self
    }

    pub fn with_deadline(mut self, d: DeadlineConfig) -> Self {
        self.deadline = Some(d);
        self
    }

    pub fn with_ladder(mut self, l: LadderConfig) -> Self {
        self.ladder = Some(l);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> LadderConfig {
        LadderConfig {
            tick: SimDuration::from_millis(100),
            high_water_ms: 60.0,
            low_water_ms: 25.0,
            down_ticks: 2,
            up_ticks: 3,
            downscale_payload: 0.35,
            downscale_compute: 0.55,
        }
    }

    #[test]
    fn hysteresis_requires_consecutive_ticks() {
        let mut c = OverloadController::new(ladder(), 2);
        assert!(c.tick(100.0).is_empty(), "one over tick is not enough");
        assert!(c.tick(40.0).is_empty(), "deadband resets the counter");
        assert!(c.tick(100.0).is_empty());
        let steps = c.tick(100.0);
        assert_eq!(steps.len(), 1, "two consecutive over ticks escalate");
        assert_eq!(steps[0].client, 1, "highest id degrades first");
        assert_eq!(steps[0].level, LADDER_DOWNSCALE);
    }

    #[test]
    fn escalation_spreads_before_deepening() {
        let mut c = OverloadController::new(ladder(), 3);
        // Each escalation: 2 over-ticks at just-over-high (1 step each).
        for _ in 0..3 {
            c.tick(61.0);
            c.tick(61.0);
        }
        assert_eq!(c.levels(), &[1, 1, 1], "everyone downscales first");
        c.tick(61.0);
        c.tick(61.0);
        assert_eq!(c.levels(), &[1, 1, 2], "only then does anyone halve rate");
    }

    #[test]
    fn severe_overload_escalates_in_bulk() {
        let mut c = OverloadController::new(ladder(), 4);
        c.tick(200.0);
        let steps = c.tick(200.0); // 200/60 → 3 steps at once
        assert_eq!(steps.len(), 3);
        assert_eq!(c.levels(), &[0, 1, 1, 1]);
    }

    #[test]
    fn relaxation_unwinds_in_reverse_with_slower_cadence() {
        let mut c = OverloadController::new(ladder(), 2);
        for _ in 0..3 {
            c.tick(61.0);
            c.tick(61.0);
        }
        assert_eq!(c.levels(), &[1, 2], "client 1 first down then deeper");
        assert_eq!(c.max_level_seen, LADDER_HALF_RATE);
        // Recovery: up_ticks (3) quiet ticks per single step.
        let mut transitions = Vec::new();
        for _ in 0..12 {
            transitions.extend(c.tick(10.0));
        }
        assert_eq!(c.levels(), &[0, 0], "fully recovered");
        let order: Vec<(usize, u8)> = transitions.iter().map(|s| (s.client, s.level)).collect();
        assert_eq!(
            order,
            vec![(1, 1), (1, 0), (0, 0)],
            "deepest rung relaxes first"
        );
    }

    #[test]
    fn ladder_never_exceeds_denied() {
        let mut c = OverloadController::new(ladder(), 1);
        for _ in 0..40 {
            c.tick(500.0);
        }
        assert_eq!(c.level(0), LADDER_DENIED);
        assert_eq!(c.period_factor(0), 2);
        assert_eq!(c.period_factor(99), 1, "unknown clients run full rate");
    }

    #[test]
    fn retry_backoff_doubles() {
        let d = DeadlineConfig {
            deadline: SimDuration::from_millis(250),
            max_retries: 3,
            backoff: SimDuration::from_millis(40),
        };
        assert_eq!(d.retry_delay(1).as_millis(), 40);
        assert_eq!(d.retry_delay(2).as_millis(), 80);
        assert_eq!(d.retry_delay(3).as_millis(), 160);
    }

    #[test]
    fn default_config_is_inert() {
        assert!(!ResilienceConfig::default().enabled());
        assert!(ResilienceConfig::default()
            .with_ladder(LadderConfig::default())
            .enabled());
    }
}
