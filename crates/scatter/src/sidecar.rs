//! The scAtteR++ sidecar: a queueing, filtering, metering ingress proxy.
//!
//! §5: "the sidecar performs queuing and filtering of the incoming
//! requests and makes a gRPC call to the attached service for processing
//! outstanding frames in filtered FIFO order. The sidecar also collects
//! metrics (i.e., queueing and processing time or threshold ratio) that
//! are attached to the data's state."
//!
//! The filter enforces the 100 ms XR latency budget using exactly those
//! collected metrics: a frame is admitted only if its *projected*
//! completion — current age + expected wait behind the queued frames +
//! this service's expected processing + the expected remainder of the
//! pipeline — fits the threshold. Pure age-at-dequeue filtering is not
//! enough: at an overloaded bottleneck it converges to serving frames
//! exactly at the age limit, all of which then die at the next stage
//! (the queue does work that can never meet the budget). Projection keeps
//! the queue short and spends GPU time only on frames that can still make
//! it, which is what lets scAtteR++ sustain throughput under overload.

use std::collections::VecDeque;

use simcore::{SimDuration, SimTime};

use crate::message::FrameMsg;

/// Why a frame left the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dequeue {
    /// Frame handed to the service; includes its queueing delay.
    Serve(SimDuration),
    /// Queue empty.
    Empty,
}

/// Per-service sidecar queue with projected-completion filtering.
#[derive(Debug)]
pub struct Sidecar {
    queue: VecDeque<(FrameMsg, SimTime)>,
    threshold: SimDuration,
    /// Expected processing time of the attached service (from the
    /// sidecar's own processing-time metrics).
    service_est: SimDuration,
    /// Expected time the frame still needs after this service (rest of
    /// the pipeline + return path).
    downstream_est: SimDuration,
    /// Frames accepted into the queue.
    pub enqueued: u64,
    /// Frames dropped by the filter (at admission or at dequeue).
    pub dropped: u64,
    /// Frames handed to the service.
    pub served: u64,
    /// Sum of queueing delays (for mean queue time).
    queue_time_sum: SimDuration,
    /// Running EWMA of observed service time, ms — the sidecar's own
    /// "collected processing-time metric". Seeded from the constructor
    /// estimate; every completion observation tightens it.
    ewma_service_ms: f64,
}

impl Sidecar {
    /// `threshold` is the end-to-end budget (100 ms in the paper);
    /// `service_est` and `downstream_est` are the sidecar's running
    /// expectations used for projection. Zero estimates degrade to pure
    /// age filtering.
    pub fn new(
        threshold: SimDuration,
        service_est: SimDuration,
        downstream_est: SimDuration,
    ) -> Self {
        Sidecar {
            queue: VecDeque::new(),
            threshold,
            ewma_service_ms: service_est.as_millis_f64(),
            service_est,
            downstream_est,
            enqueued: 0,
            dropped: 0,
            served: 0,
            queue_time_sum: SimDuration::ZERO,
        }
    }

    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Projected completion of a frame of age `age` entering behind
    /// `queue_len` frames: age + (q + 1) × service + downstream.
    fn projected(&self, age: SimDuration, queue_len: usize) -> SimDuration {
        age + self.service_est * (queue_len as u64 + 1) + self.downstream_est
    }

    /// Accept a frame into the queue if its projected completion fits the
    /// threshold; otherwise filter it immediately.
    pub fn enqueue(&mut self, msg: FrameMsg, now: SimTime) -> bool {
        self.enqueue_or_reject(msg, now).is_none()
    }

    /// Like [`enqueue`](Sidecar::enqueue), but hands back the rejected
    /// frame so the caller can attribute the drop (trace forensics need
    /// the frame's [`TraceCtx`](trace::TraceCtx), not just a count).
    /// Returns `None` on admission, `Some(msg)` when filtered.
    pub fn enqueue_or_reject(&mut self, msg: FrameMsg, now: SimTime) -> Option<FrameMsg> {
        if self.projected(msg.age(now), self.queue.len()) > self.threshold {
            self.dropped += 1;
            return Some(msg);
        }
        self.enqueued += 1;
        self.queue.push_back((msg, now));
        None
    }

    /// Pop the next serviceable frame in FIFO order, filtering out any
    /// whose remaining budget can no longer cover service + downstream.
    pub fn dequeue(&mut self, now: SimTime) -> (Dequeue, Option<FrameMsg>) {
        let (outcome, served, _) = self.dequeue_with_drops(now);
        (outcome, served)
    }

    /// Like [`dequeue`](Sidecar::dequeue), but also returns the frames the
    /// filter discarded while searching for a serviceable one, so each
    /// discarded frame's drop can be attributed to its trace.
    pub fn dequeue_with_drops(
        &mut self,
        now: SimTime,
    ) -> (Dequeue, Option<FrameMsg>, Vec<FrameMsg>) {
        let mut filtered = Vec::new();
        while let Some((msg, arrived)) = self.queue.pop_front() {
            if self.projected(msg.age(now), 0) > self.threshold {
                self.dropped += 1;
                filtered.push(msg);
                continue;
            }
            let waited = now.saturating_since(arrived);
            self.served += 1;
            self.queue_time_sum += waited;
            return (Dequeue::Serve(waited), Some(msg), filtered);
        }
        (Dequeue::Empty, None, filtered)
    }

    /// Empty the queue, returning the queued frames. Used when the
    /// attached service crashes: the frames are lost with the instance
    /// and must be accounted as crash drops, not filter drops.
    pub fn drain(&mut self) -> Vec<FrameMsg> {
        self.queue.drain(..).map(|(msg, _)| msg).collect()
    }

    /// Fraction of frames dropped by the filter among all seen.
    pub fn drop_ratio(&self) -> f64 {
        let seen = self.served + self.dropped;
        if seen == 0 {
            0.0
        } else {
            self.dropped as f64 / seen as f64
        }
    }

    /// Mean queueing delay of served frames.
    pub fn mean_queue_time(&self) -> SimDuration {
        if self.served == 0 {
            SimDuration::ZERO
        } else {
            self.queue_time_sum / self.served
        }
    }

    pub fn threshold(&self) -> SimDuration {
        self.threshold
    }

    /// Fold one observed service time (accept → completion, ms) into
    /// the sidecar's running EWMA estimate — the paper's "the sidecar
    /// also collects metrics (i.e., queueing and processing time)".
    /// This is what keeps the projection honest under GPU contention:
    /// when co-located kernels slow the service down, admission tightens
    /// instead of wasting GPU time on frames that cannot finish. The
    /// constructor estimate is only the EWMA's seed; after a load step
    /// the estimate converges to the observed level geometrically
    /// (weight 0.1 per observation — ≈ 90% of the way in 22 frames).
    pub fn observe_service_ms(&mut self, observed_ms: f64) {
        self.ewma_service_ms = 0.9 * self.ewma_service_ms + 0.1 * observed_ms;
        self.service_est = SimDuration::from_nanos((self.ewma_service_ms * 1e6) as u64);
    }

    /// Override the expected service time (tests; migration re-seeding).
    pub fn set_service_est(&mut self, est: SimDuration) {
        self.ewma_service_ms = est.as_millis_f64();
        self.service_est = est;
    }

    /// The sidecar's exported backpressure signal: projected wait for a
    /// hypothetical frame admitted *now* — queue occupancy times the
    /// running service estimate plus the expected downstream remainder.
    /// The overload controller steps the degradation ladder off this.
    pub fn backpressure_ms(&self) -> f64 {
        (self.service_est * (self.queue.len() as u64 + 1) + self.downstream_est).as_millis_f64()
    }

    /// Update the expected post-service pipeline time (from downstream
    /// sidecars' shared metrics): lets an early stage refuse frames that
    /// a congested *later* stage would only throw away, moving drops to
    /// the cheapest point in the pipeline.
    pub fn set_downstream_est(&mut self, est: SimDuration) {
        self.downstream_est = est;
    }

    pub fn service_est(&self) -> SimDuration {
        self.service_est
    }

    pub fn downstream_est(&self) -> SimDuration {
        self.downstream_est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::NodeId;

    fn msg(emitted_ms: u64) -> FrameMsg {
        FrameMsg::new(0, 1, NodeId(0), SimTime::from_millis(emitted_ms), 1000)
    }

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Pure age filter (zero estimates).
    fn age_only(threshold_ms: u64) -> Sidecar {
        Sidecar::new(
            SimDuration::from_millis(threshold_ms),
            SimDuration::ZERO,
            SimDuration::ZERO,
        )
    }

    #[test]
    fn fifo_order_preserved() {
        let mut sc = age_only(100);
        for i in 0..3 {
            let mut m = msg(0);
            m.frame_no = i;
            sc.enqueue(m, at(1));
        }
        for i in 0..3 {
            let (_, m) = sc.dequeue(at(2));
            assert_eq!(m.unwrap().frame_no, i);
        }
        assert!(matches!(sc.dequeue(at(2)).0, Dequeue::Empty));
    }

    #[test]
    fn stale_on_arrival_filtered() {
        let mut sc = age_only(100);
        assert!(!sc.enqueue(msg(0), at(150)));
        assert_eq!(sc.dropped, 1);
        assert_eq!(sc.len(), 0);
    }

    #[test]
    fn stale_in_queue_filtered_at_dequeue() {
        let mut sc = age_only(100);
        sc.enqueue(msg(0), at(10)); // fine on arrival
        sc.enqueue(msg(90), at(95)); // younger frame behind it
        let (outcome, m) = sc.dequeue(at(120)); // first frame now 120ms old
        assert!(matches!(outcome, Dequeue::Serve(_)));
        assert_eq!(m.unwrap().emitted_at, at(90));
        assert_eq!(sc.dropped, 1);
        assert_eq!(sc.served, 1);
    }

    #[test]
    fn queue_time_accounted() {
        let mut sc = age_only(100);
        sc.enqueue(msg(0), at(10));
        let (outcome, _) = sc.dequeue(at(40));
        match outcome {
            Dequeue::Serve(waited) => assert_eq!(waited.as_millis(), 30),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(sc.mean_queue_time().as_millis(), 30);
    }

    #[test]
    fn drop_ratio_counts_both_paths() {
        let mut sc = age_only(50);
        sc.enqueue(msg(0), at(10)); // will go stale
        sc.enqueue(msg(100), at(110)); // will be served
        let _ = sc.dequeue(at(120)); // drops first, serves second
        assert_eq!(sc.drop_ratio(), 0.5);
    }

    #[test]
    fn boundary_age_exactly_threshold_is_kept() {
        let mut sc = age_only(100);
        assert!(sc.enqueue(msg(0), at(100)), "age == threshold must pass");
    }

    #[test]
    fn projection_bounds_queue_length() {
        // Service 10 ms, downstream 20 ms, threshold 100 ms: a fresh frame
        // fits only while (q + 1) × 10 + 20 ≤ 100, i.e. q ≤ 7.
        let mut sc = Sidecar::new(
            SimDuration::from_millis(100),
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
        );
        let mut admitted = 0;
        for _ in 0..20 {
            if sc.enqueue(msg(100), at(100)) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 8, "queue must cap where projection hits budget");
        assert_eq!(sc.dropped, 12);
    }

    #[test]
    fn projection_rejects_frames_that_cannot_finish() {
        // Age 75 ms + 10 service + 20 downstream = 105 > 100 → reject even
        // with an empty queue.
        let mut sc = Sidecar::new(
            SimDuration::from_millis(100),
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
        );
        assert!(!sc.enqueue(msg(0), at(75)));
        // Age 69: 69 + 30 = 99 ≤ 100 → admitted.
        assert!(sc.enqueue(msg(0), at(69)));
    }

    #[test]
    fn ewma_estimate_converges_under_a_load_step() {
        // Constructor seeds 5 ms; the service then takes 20 ms per frame
        // (a load step: GPU contention kicked in). The running estimate
        // must converge to the observed level, not stay pinned at the
        // constructor value.
        let mut sc = Sidecar::new(
            SimDuration::from_millis(100),
            SimDuration::from_millis(5),
            SimDuration::from_millis(20),
        );
        assert_eq!(sc.service_est().as_millis(), 5);
        for _ in 0..40 {
            sc.observe_service_ms(20.0);
        }
        let est = sc.service_est().as_millis_f64();
        assert!(
            (est - 20.0).abs() < 0.5,
            "estimate {est} ms did not converge to the observed 20 ms"
        );
        // And back down after the contention clears.
        for _ in 0..40 {
            sc.observe_service_ms(8.0);
        }
        let est = sc.service_est().as_millis_f64();
        assert!((est - 8.0).abs() < 0.5, "estimate {est} ms stuck high");
    }

    #[test]
    fn backpressure_reflects_queue_and_estimates() {
        let mut sc = Sidecar::new(
            SimDuration::from_millis(100),
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
        );
        assert_eq!(sc.backpressure_ms(), 30.0, "empty queue: service + rest");
        sc.enqueue(msg(100), at(100));
        sc.enqueue(msg(100), at(100));
        assert_eq!(sc.backpressure_ms(), 50.0, "(2+1)×10 + 20");
    }

    #[test]
    fn dequeue_projection_drops_frames_that_aged_in_queue() {
        let mut sc = Sidecar::new(
            SimDuration::from_millis(100),
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
        );
        sc.enqueue(msg(0), at(10));
        // By dequeue time the frame is 75 ms old: 75 + 30 > 100 → filtered.
        let (outcome, m) = sc.dequeue(at(75));
        assert!(matches!(outcome, Dequeue::Empty));
        assert!(m.is_none());
        assert_eq!(sc.dropped, 1);
    }
}
