//! Per-machine GPU contention.
//!
//! Co-located GPU services share the machine's physical GPUs. The paper's
//! placement results (single-machine deployments degrading faster than
//! split ones; C12 reaching ≈20 FPS where C1 reaches ≈12 under scAtteR++)
//! are driven by exactly this contention, so the model is explicit: each
//! machine owns `gpu_count` execution tokens, a service execution holds
//! one token for its duration, and requests are granted in arrival order
//! at the earliest instant a token frees up.

use simcore::{SimDuration, SimTime};

/// GPU execution model for one machine.
///
/// Two disciplines are offered:
///
/// - **token FIFO** ([`GpuPool::acquire`]): exclusive-kernel semantics,
///   used in unit experiments about hard serialization;
/// - **processor sharing** ([`GpuPool::ps_begin`] / [`GpuPool::ps_end`]):
///   CUDA time-slicing/MPS semantics — concurrent kernels all make
///   progress, each slowed by the ratio of active demand to physical GPU
///   count. This is what co-located containerized GPU services actually
///   experience and what the pipeline simulation uses.
#[derive(Debug, Clone)]
pub struct GpuPool {
    /// `free_at[i]` is when token `i` next becomes available.
    free_at: Vec<SimTime>,
    /// Sum of occupancy weights of kernels currently executing (PS).
    active_weight: f64,
}

impl GpuPool {
    pub fn new(tokens: usize) -> Self {
        assert!(tokens >= 1, "a GPU pool needs at least one token");
        GpuPool {
            free_at: vec![SimTime::ZERO; tokens],
            active_weight: 0.0,
        }
    }

    pub fn tokens(&self) -> usize {
        self.free_at.len()
    }

    /// Reserve a token for `duration` starting no earlier than `now`.
    /// Returns the actual start time (≥ `now`); the difference is the
    /// GPU queueing delay that inflates observed service latency under
    /// contention.
    pub fn acquire(&mut self, now: SimTime, duration: SimDuration) -> SimTime {
        let (idx, &earliest) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("pool has at least one token");
        let start = earliest.max(now);
        self.free_at[idx] = start + duration;
        start
    }

    /// Would an acquisition at `now` start immediately?
    pub fn idle_token_available(&self, now: SimTime) -> bool {
        self.free_at.iter().any(|&t| t <= now)
    }

    /// Current backlog: how far beyond `now` the least-loaded token is
    /// committed.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        let earliest = self.free_at.iter().min().expect("non-empty pool");
        earliest.saturating_since(now)
    }

    /// Processor-sharing admission: a kernel with `weight` GPU-occupancy
    /// (≤ 1 GPU) starts executing immediately; returns the slowdown
    /// factor (≥ 1) to apply to its wall time, frozen at admission.
    pub fn ps_begin(&mut self, weight: f64) -> f64 {
        assert!(weight >= 0.0, "negative occupancy weight");
        self.active_weight += weight;
        (self.active_weight / self.free_at.len() as f64).max(1.0)
    }

    /// Processor-sharing completion: release the kernel's weight.
    pub fn ps_end(&mut self, weight: f64) {
        self.active_weight -= weight;
        if self.active_weight < 0.0 {
            debug_assert!(self.active_weight > -1e-9, "PS weight underflow");
            self.active_weight = 0.0;
        }
    }

    /// Currently active PS weight (diagnostics).
    pub fn active_weight(&self) -> f64 {
        self.active_weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    fn at(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn uncontended_requests_start_immediately() {
        let mut pool = GpuPool::new(2);
        assert_eq!(pool.acquire(at(10), ms(5)), at(10));
        assert_eq!(pool.acquire(at(10), ms(5)), at(10)); // second token
        assert!(!pool.idle_token_available(at(10)));
        assert!(pool.idle_token_available(at(15)));
    }

    #[test]
    fn contention_serializes_in_order() {
        let mut pool = GpuPool::new(1);
        assert_eq!(pool.acquire(at(0), ms(10)), at(0));
        assert_eq!(pool.acquire(at(2), ms(10)), at(10));
        assert_eq!(pool.acquire(at(3), ms(10)), at(20));
        assert_eq!(pool.backlog(at(3)).as_millis(), 27);
    }

    #[test]
    fn tokens_reused_after_free() {
        let mut pool = GpuPool::new(1);
        pool.acquire(at(0), ms(5));
        assert_eq!(
            pool.acquire(at(20), ms(5)),
            at(20),
            "idle pool starts at now"
        );
        assert_eq!(pool.backlog(at(30)), SimDuration::ZERO);
    }

    #[test]
    fn ps_uncontended_runs_at_full_speed() {
        let mut pool = GpuPool::new(2);
        assert_eq!(pool.ps_begin(1.0), 1.0);
        assert_eq!(pool.ps_begin(0.8), 1.0); // 1.8 ≤ 2 GPUs
        pool.ps_end(1.0);
        pool.ps_end(0.8);
        assert_eq!(pool.active_weight(), 0.0);
    }

    #[test]
    fn ps_oversubscription_slows_down() {
        let mut pool = GpuPool::new(1);
        assert_eq!(pool.ps_begin(1.0), 1.0);
        let slow = pool.ps_begin(1.0);
        assert!(
            (slow - 2.0).abs() < 1e-9,
            "two kernels on one GPU run at half speed"
        );
        pool.ps_end(1.0);
        pool.ps_end(1.0);
    }

    #[test]
    fn two_tokens_halve_the_queue() {
        let mut one = GpuPool::new(1);
        let mut two = GpuPool::new(2);
        let mut last_one = SimTime::ZERO;
        let mut last_two = SimTime::ZERO;
        for i in 0..10 {
            let now = at(i);
            last_one = one.acquire(now, ms(10)) + ms(10);
            last_two = two.acquire(now, ms(10)) + ms(10);
        }
        assert!(last_two < last_one, "{last_two} !< {last_one}");
    }
}
