//! Application-aware autoscaling — the paper's future-work proposal
//! made concrete.
//!
//! §6 ("Application-Aware Orchestration"): hardware-level utilization is
//! the only signal orchestrators like Kubernetes or Oakestra see, yet
//! the paper shows it *anti-correlates* with AR QoS under congestion
//! (services stall on drops, so utilization falls exactly when the app
//! needs help). The proposed fix is to bridge the virtualization
//! boundary via the scAtteR++ sidecar, "providing predefined hooks for
//! the orchestrator to access internal application metrics".
//!
//! This module implements both worlds so experiments can compare them:
//!
//! - [`ScalePolicy::HardwareDriven`]: a k8s-HPA-style controller that
//!   scales the service whose instances show the highest busy fraction,
//!   once it crosses a utilization threshold — all it can see from
//!   outside the container;
//! - [`ScalePolicy::ApplicationAware`]: the sidecar-hook controller that
//!   scales the service with the highest *ingress drop ratio* — the QoS
//!   signal the paper shows actually tracks the bottleneck.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

/// When and how the controller scales out.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScalePolicy {
    /// Scale the busiest service once its busy fraction exceeds the
    /// threshold (0–1).
    HardwareDriven { busy_threshold: f64 },
    /// Scale the droppiest service once its window drop ratio exceeds
    /// the threshold (0–1).
    ApplicationAware { drop_threshold: f64 },
}

/// Autoscaler configuration for a run.
#[derive(Debug, Clone, Copy)]
pub struct AutoscaleConfig {
    pub policy: ScalePolicy,
    /// Evaluation interval.
    pub interval: SimDuration,
    /// Hard cap on replicas per service.
    pub max_replicas: usize,
    /// Machines eligible to host new replicas (GPU machines only).
    pub spread_over: MachinePool,
}

/// Which machines scale-out replicas may land on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachinePool {
    /// E1 and E2, least-loaded first.
    Edge,
    /// E1, E2 and the cloud VM.
    EdgeAndCloud,
}

impl AutoscaleConfig {
    pub fn hardware(busy_threshold: f64) -> Self {
        AutoscaleConfig {
            policy: ScalePolicy::HardwareDriven { busy_threshold },
            interval: SimDuration::from_secs(5),
            max_replicas: 3,
            spread_over: MachinePool::Edge,
        }
    }

    pub fn application_aware(drop_threshold: f64) -> Self {
        AutoscaleConfig {
            policy: ScalePolicy::ApplicationAware { drop_threshold },
            interval: SimDuration::from_secs(5),
            max_replicas: 3,
            spread_over: MachinePool::Edge,
        }
    }
}

/// One scale-out action taken during a run (reported post-hoc).
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleEvent {
    pub at: simcore::SimTime,
    pub service: crate::message::ServiceKind,
    pub machine: String,
    /// The signal value that triggered the action.
    pub signal: f64,
}

/// Pick the scale-out target given per-service window signals.
///
/// `signals[i] = (busy_fraction, drop_ratio)` for service kind `i`;
/// `replica_counts[i]` the current replica count. Returns the kind index
/// to scale and the triggering signal value.
pub fn pick_target(
    policy: ScalePolicy,
    signals: &[(f64, f64); 5],
    replica_counts: &[usize; 5],
    max_replicas: usize,
) -> Option<(usize, f64)> {
    let metric = |i: usize| match policy {
        ScalePolicy::HardwareDriven { .. } => signals[i].0,
        ScalePolicy::ApplicationAware { .. } => signals[i].1,
    };
    let threshold = match policy {
        ScalePolicy::HardwareDriven { busy_threshold } => busy_threshold,
        ScalePolicy::ApplicationAware { drop_threshold } => drop_threshold,
    };
    (0..5)
        .filter(|&i| replica_counts[i] < max_replicas)
        .map(|i| (i, metric(i)))
        .filter(|&(_, m)| m > threshold)
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite metrics"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTS: [usize; 5] = [1, 1, 1, 1, 1];

    #[test]
    fn hardware_policy_picks_busiest() {
        let signals = [(0.3, 0.9), (0.95, 0.0), (0.5, 0.2), (0.1, 0.0), (0.7, 0.4)];
        let picked = pick_target(
            ScalePolicy::HardwareDriven {
                busy_threshold: 0.6,
            },
            &signals,
            &COUNTS,
            3,
        );
        assert_eq!(picked, Some((1, 0.95)));
    }

    #[test]
    fn app_policy_picks_droppiest() {
        let signals = [(0.3, 0.9), (0.95, 0.0), (0.5, 0.2), (0.1, 0.0), (0.7, 0.4)];
        let picked = pick_target(
            ScalePolicy::ApplicationAware {
                drop_threshold: 0.15,
            },
            &signals,
            &COUNTS,
            3,
        );
        assert_eq!(picked, Some((0, 0.9)));
    }

    #[test]
    fn below_threshold_no_action() {
        let signals = [(0.3, 0.05); 5];
        assert_eq!(
            pick_target(
                ScalePolicy::HardwareDriven {
                    busy_threshold: 0.6
                },
                &signals,
                &COUNTS,
                3
            ),
            None
        );
        assert_eq!(
            pick_target(
                ScalePolicy::ApplicationAware {
                    drop_threshold: 0.15
                },
                &signals,
                &COUNTS,
                3
            ),
            None
        );
    }

    #[test]
    fn replica_cap_respected() {
        let signals = [(0.9, 0.9); 5];
        let counts = [3, 3, 3, 3, 2];
        let picked = pick_target(
            ScalePolicy::ApplicationAware {
                drop_threshold: 0.1,
            },
            &signals,
            &counts,
            3,
        );
        assert_eq!(
            picked.map(|(i, _)| i),
            Some(4),
            "only the uncapped service is eligible"
        );
    }

    #[test]
    fn the_papers_blind_spot() {
        // The scenario insight (I) describes: QoS collapsing (drops
        // everywhere) while utilization stalls LOW — the hardware policy
        // sees nothing, the app-aware policy reacts.
        let stalled = [
            (0.35, 0.45),
            (0.40, 0.55),
            (0.30, 0.20),
            (0.25, 0.10),
            (0.38, 0.60),
        ];
        assert_eq!(
            pick_target(
                ScalePolicy::HardwareDriven {
                    busy_threshold: 0.7
                },
                &stalled,
                &COUNTS,
                3
            ),
            None,
            "hardware policy is blind to the collapse"
        );
        assert_eq!(
            pick_target(
                ScalePolicy::ApplicationAware {
                    drop_threshold: 0.15
                },
                &stalled,
                &COUNTS,
                3
            )
            .map(|(i, _)| i),
            Some(4),
            "app-aware policy targets the droppiest service"
        );
    }
}
