//! The discrete-event simulation of scAtteR / scAtteR++ on the testbed.
//!
//! One [`run_experiment`] call builds the paper's topology and cluster,
//! deploys the configured placement, replays the client video streams,
//! and returns a [`RunReport`]. All stochastic elements draw from streams
//! split off the config seed, so runs are bit-for-bit reproducible.
//!
//! The semantics encoded here are the paper's, not idealizations:
//!
//! - every service processes one frame at a time;
//! - scAtteR drops requests that reach a busy service, and `matching`
//!   must fetch per-frame feature state from the exact `sift` replica
//!   that produced it (sticky binding), busy-waiting until a timeout;
//! - scAtteR++ queues requests in a per-service sidecar that filters
//!   frames older than the 100 ms staleness threshold, and `sift`
//!   embeds its state in the forwarded (≈480 KB) frame;
//! - co-located GPU services contend for the machine's physical GPUs;
//! - all transport is UDP: oversized datagrams fragment, losses kill the
//!   whole frame, nothing is retransmitted.

use std::collections::HashMap;

use metrics::{LogHistogram, TimeSeries};
use orchestra::{Balancer, BalancerKind, Cluster, ServiceSla};

use simcore::{Sim, SimDuration, SimRng, SimTime};
use simnet::{NodeId, SiteMap, Testbed, UdpNet};

use crate::autoscale::{MachinePool, ScaleEvent};
use crate::client::{ClientState, FRAME_PERIOD};
use crate::config::{Mode, RunConfig};
use crate::costmodel::CostModel;
use crate::gpu::GpuPool;
use crate::message::{FrameMsg, ServiceKind, SERVICE_NAMES};
use crate::obs::{DesObs, DesTelemetry};
use crate::report::{MachineReport, RunReport, ServiceReport};
use crate::service::{StateEntry, SvcRuntime};
use crate::sidecar::Sidecar;

/// Simulation world: everything the event closures mutate.
pub struct PipelineWorld {
    pub cfg: RunConfig,
    pub cost: CostModel,
    pub net: UdpNet,
    pub cluster: Cluster,
    pub testbed: Testbed,
    /// All deployed instances; index = "slot".
    pub services: Vec<SvcRuntime>,
    /// Slots per service kind, replica-ordered.
    pub replicas: [Vec<usize>; 5],
    pub balancers: [Balancer; 5],
    /// GPU token pool per cluster machine index.
    pub gpu_pools: Vec<GpuPool>,
    pub clients: Vec<ClientState>,
    /// Service-time sampling stream.
    pub rng_service: SimRng,
    /// Client phase / misc stream.
    pub rng_misc: SimRng,
    /// Sampled per-slot resident memory in GB (1 Hz).
    pub mem_series: Vec<TimeSeries>,
    /// Sampled per-machine total memory in GB (1 Hz).
    pub machine_mem: Vec<TimeSeries>,
    pub end_at: SimTime,
    pub warmup_at: SimTime,
    /// SLAs kept for mid-run scale-out deployments.
    pub slas: Vec<ServiceSla>,
    /// Scale-out actions taken by the autoscaler.
    pub scale_events: Vec<ScaleEvent>,
    /// Latency breakdown over completed frames: per-stage compute, per-
    /// stage queue/fetch wait, and the network residual, all ms.
    pub breakdown_compute: [metrics::Summary; 5],
    pub breakdown_queue: [metrics::Summary; 5],
    pub breakdown_network: metrics::Summary,
    /// Per-frame causal tracing: inert, head-sampled (`cfg.trace`), or
    /// tail-sampled (`cfg.observatory`). Event recording is append-only
    /// and draws no randomness, so enabling it cannot perturb the
    /// simulation's determinism.
    pub tracer: observatory::DesSink,
    /// Trace track per service slot (parallel to `services`).
    pub track_of_slot: Vec<trace::TrackId>,
    /// Trace track per client (the result's return transit lands here).
    pub client_tracks: Vec<trace::TrackId>,
    /// Live telemetry (inert unless a registry was passed in). Like the
    /// tracer it is an observer — no RNG, no scheduled events, no
    /// feedback — so telemetered runs stay bit-identical.
    pub obs: Option<DesObs>,
    // --- resilience control plane (inert unless `cfg.resilience` has a
    // leg enabled; every field below then stays at its default) ---
    /// Cluster instance id per slot (parallel to `services`) — the
    /// identity the failure detector and redeploy bookkeeping use.
    pub instance_ids: Vec<orchestra::InstanceId>,
    /// Heartbeat failure detector (detection leg only).
    pub detector: Option<orchestra::FailureDetector>,
    /// Heartbeat-jitter stream — a 4th root split taken ONLY when the
    /// detection leg is on, so baseline runs keep their stream
    /// assignments (and bytes) untouched.
    pub rng_hb: Option<SimRng>,
    /// Slots the balancer currently routes to, per kind: position `p`
    /// in `routable[ki]` is balancer replica `p`. Equal to `replicas`
    /// until a detection removes an instance; empty = service outage.
    pub routable: [Vec<usize>; 5],
    /// Slots the detector has removed from routing (parallel to
    /// `services`). A frame dispatched to a `derouted` slot is a
    /// failover bug — counted, and gated to zero by the experiments.
    pub derouted: Vec<bool>,
    /// Crash instants awaiting detection (detection-latency numerator).
    pub crash_pending: HashMap<usize, SimTime>,
    /// Per-original-frame client deadline state (deadline leg only).
    pub inflight: HashMap<(usize, u64), InflightFrame>,
    /// The degradation-ladder controller (ladder leg only).
    pub ladder: Option<crate::resilience::OverloadController>,
    /// Resilience-plane accumulators, moved into the report at the end.
    pub resilience: crate::report::ResilienceReport,
    /// Wire-protocol model (inert `None` unless `cfg.wire` is set): the
    /// precomputed per-client uplink byte schedule plus accumulators.
    pub wire: Option<WireSim>,
    // --- scale-out plane (DESIGN.md §14; inert unless `cfg.scale` is
    // set — a `None` run is byte-identical to a pre-scale build) ---
    /// Client → access-site assignment. `None` = the legacy single
    /// `client-host` node.
    pub site_map: Option<SiteMap>,
    /// Streaming-metrics mode: per-client QoS folds into [`crate::client::StreamQos`]
    /// counters and the run-wide histogram below instead of per-event vectors.
    pub streaming: bool,
    /// Effective event-queue shard count the run executed with (after
    /// the `SCATTER_SHARDS` override).
    pub shards: usize,
    /// Run-wide E2E latency histogram (`Some` iff `streaming`).
    pub scale_e2e: Option<LogHistogram>,
    // --- observatory (inert unless `cfg.observatory` is set) ---
    /// Anomaly-triggered flight recorder. Rings are keyed by *client*
    /// (plus ring 0 for control-plane events), never by event-queue
    /// shard, so dump contents are invariant under `SCATTER_SHARDS`.
    pub flight: Option<observatory::FlightRecorder>,
    /// Sampled self-profiler over the DES hot paths (see [`DES_PHASES`]).
    pub prof: Option<observatory::PhaseProfiler>,
    /// SLO events already mirrored into the flight recorder.
    pub slo_seen: usize,
}

/// Self-profiler phases over the DES hot paths. Indices are the `PH_*`
/// constants; the observatory bin reconciles these against the report's
/// `latency_breakdown`.
pub const DES_PHASES: &[&str] = &["net-decide", "cost-sample", "deliver", "slo-tick"];
const PH_NET: usize = 0;
const PH_COST: usize = 1;
const PH_DELIVER: usize = 2;
const PH_SLO: usize = 3;

impl PipelineWorld {
    /// The network node a client's frames originate from (and results
    /// return to): its access site at scale, `client-host` otherwise.
    fn client_node(&self, client: usize) -> NodeId {
        match &self.site_map {
            Some(sm) => sm.node_of(client),
            None => self.testbed.client_host,
        }
    }

    /// Event-queue shard key for a client: its site index. Every event
    /// keyed this way lands in shard `site % shards`; the cross-shard
    /// merge keeps execution order identical for any shard count.
    fn client_key(&self, client: usize) -> u64 {
        self.site_map
            .as_ref()
            .map_or(0, |sm| sm.site_index(client) as u64)
    }

    /// Flight-recorder ring for one client's drop events. Rings `1..`
    /// are client-keyed (ring 0 carries control-plane events) — a pure
    /// function of the event, so recording order and placement are
    /// identical for any `SCATTER_SHARDS` layout.
    fn flight_ring(&self, client: u16) -> usize {
        self.flight
            .as_ref()
            .map_or(0, |f| 1 + client as usize % (f.ring_count() - 1).max(1))
    }
}

/// Live state of the DES wire model: the uplink byte schedule computed
/// at world build by running the *real* client pipeline
/// ([`crate::wirev2::predict`]), plus run accumulators. Everything here
/// is deterministic given the config — the model draws no randomness.
pub struct WireSim {
    pub cfg: crate::config::WireSimConfig,
    /// Per-client, per-frame uplink datagram bytes (headers included).
    schedule: Vec<Vec<u64>>,
    /// Uplink datagrams routed so far (the `corrupt_first` counter —
    /// mirrors the impairment shim's per-link send index).
    sent: u64,
    /// Total uplink datagram bytes offered at the send site.
    pub uplink_bytes: u64,
    /// Corrupted datagrams the v2 ingress CRC caught.
    pub invalid_crc: u64,
}

impl WireSim {
    fn build(cfg: &RunConfig) -> Option<WireSim> {
        let w = cfg.wire?;
        // One schedule entry per capture-grid slot over the run, plus
        // slack for half-rate frame-number skips and end-of-run edges.
        let frames = (cfg.duration.as_secs_f64() / FRAME_PERIOD.as_secs_f64()).ceil() as usize + 8;
        let schedule = (0..cfg.clients)
            .map(|cid| {
                if w.v2 {
                    crate::wirev2::predict::uplink_schedule_v2(
                        cfg.seed, cid as u16, w.width, w.height, w.quality, frames, w.policy,
                    )
                } else {
                    crate::wirev2::predict::uplink_schedule_v1(
                        cfg.seed, cid as u16, w.width, w.height, w.quality, frames,
                    )
                }
            })
            .collect();
        Some(WireSim {
            cfg: w,
            schedule,
            sent: 0,
            uplink_bytes: 0,
            invalid_crc: 0,
        })
    }

    /// Uplink datagram bytes for one frame. Frame numbers past the
    /// schedule (half-rate skips) reuse the last entry — v2's key/delta
    /// cadence has long settled by then.
    fn frame_bytes(&self, client: usize, frame_no: u64) -> u64 {
        let s = &self.schedule[client];
        s.get(frame_no as usize)
            .or(s.last())
            .copied()
            .expect("schedule is never empty")
    }
}

/// Client-side deadline state for one original frame.
#[derive(Debug, Clone, Copy, Default)]
pub struct InflightFrame {
    /// A completion was already counted; later arrivals are duplicates.
    settled: bool,
    /// Attempts `0..expired_attempts` passed their deadline — their late
    /// results re-attribute to [`trace::DropReason::ResponseDeadline`].
    expired_attempts: u8,
    /// The latest attempt armed (deadline events for older ones no-op).
    attempt: u8,
}

type SimW = Sim<PipelineWorld>;

/// Build a sidecar for a service instance (sidecar modes only). The
/// projection estimates come from the sidecar's own collected metrics;
/// they are seeded from the cost model: this service's expected time on
/// this machine plus the expected remainder of the pipeline (base times
/// + a small per-hop transit allowance).
fn make_sidecar(
    mode: Mode,
    cost: &CostModel,
    cluster: &Cluster,
    machine: usize,
    kind_index: usize,
) -> Option<Sidecar> {
    if !mode.sidecar_queue() {
        return None;
    }
    let arch = cluster.machines()[machine]
        .gpu_arch
        .map_or(1.0, |a| a.speed_multiplier());
    let service_est = SimDuration::from_millis_f64(cost.base_ms[kind_index] * arch);
    let hop_ms = 1.0;
    let downstream_ms: f64 = cost.base_ms[kind_index + 1..]
        .iter()
        .map(|b| b + hop_ms)
        .sum::<f64>()
        + hop_ms;
    Some(Sidecar::new(
        cost.threshold(),
        service_est,
        SimDuration::from_millis_f64(downstream_ms),
    ))
}

/// Everything the observatory plane collects beyond the report and the
/// trace log: tail-sampling retention accounting, frozen flight-recorder
/// dumps, and the self-profiler snapshots (world phases + the simulator
/// core's own queue loop).
#[derive(Default)]
pub struct ObsArtifacts {
    /// Tail-sampling stats (`Some` iff `cfg.observatory` was set).
    pub tail: Option<observatory::TailStats>,
    /// Flight-recorder dumps frozen by anomaly triggers, in trigger order.
    pub flight_dumps: Vec<observatory::FlightDump>,
    /// World-phase profile (`Some` iff `cfg.observatory` was set).
    pub prof: Option<observatory::ProfSnapshot>,
    /// Simulator-core pop/exec counters (`Some` iff profiling was on).
    pub sim_prof: Option<simcore::SimProfStats>,
}

/// Build the world, run to completion, and report.
pub fn run_experiment(cfg: RunConfig) -> RunReport {
    run_experiment_with(cfg, CostModel::default())
}

/// Run with an explicit cost model (ablation studies override fields).
pub fn run_experiment_with(cfg: RunConfig, cost: CostModel) -> RunReport {
    run_world(cfg, cost, None).0 .0
}

/// Run and additionally return the causal trace log. Callers usually set
/// `cfg.trace` first — without it the log is empty (but the report is
/// identical to [`run_experiment`]'s, which is the point: tracing is an
/// observer, not a participant).
pub fn run_experiment_traced(cfg: RunConfig) -> (RunReport, trace::TraceLog) {
    let ((report, _), log, _) = run_world(cfg, CostModel::default(), None);
    (report, log)
}

/// Traced run with an explicit cost model — what the chaos study uses to
/// run a low-noise calibration whose fault windows can be reasoned about
/// exactly (see `experiments --bin chaos`).
pub fn run_experiment_traced_with(cfg: RunConfig, cost: CostModel) -> (RunReport, trace::TraceLog) {
    let ((report, _), log, _) = run_world(cfg, cost, None);
    (report, log)
}

/// Run with the observatory plane on (callers set `cfg.observatory`):
/// tail-sampled tracing, the flight recorder, and the self-profiler.
/// Like every other observer, none of it perturbs the report.
pub fn run_experiment_observed(cfg: RunConfig) -> (RunReport, trace::TraceLog, ObsArtifacts) {
    run_experiment_observed_with(cfg, CostModel::default())
}

/// Observed run with an explicit cost model (the observatory bin's
/// chaos-schedule retention gate uses the low-noise calibration).
pub fn run_experiment_observed_with(
    cfg: RunConfig,
    cost: CostModel,
) -> (RunReport, trace::TraceLog, ObsArtifacts) {
    let ((report, _), log, artifacts) = run_world(cfg, cost, None);
    (report, log, artifacts)
}

/// Run with live telemetry recording into `registry`. Every service
/// records ingress/processed/latency/drops-by-reason, clients record
/// emissions/completions/e2e latency, and 1 Hz gauges sample queue
/// depth, memory, and machine CPU/GPU. Returns the report plus the SLO
/// event log and per-window scrapes; the caller keeps the registry for
/// exposition. Telemetry is an observer: the report is bit-identical to
/// [`run_experiment`]'s.
pub fn run_experiment_telemetered(
    cfg: RunConfig,
    registry: telemetry::Registry,
) -> (RunReport, DesTelemetry) {
    run_world(cfg, CostModel::default(), Some(registry)).0
}

/// Telemetered *and* observed run — what the observatory bin's
/// cross-plane gate uses: the SLO event log and the flight dumps come
/// from the same run, so their anomaly counts can be reconciled.
pub fn run_experiment_telemetered_observed(
    cfg: RunConfig,
    registry: telemetry::Registry,
) -> (RunReport, DesTelemetry, ObsArtifacts) {
    let ((report, tele), _, artifacts) = run_world(cfg, CostModel::default(), Some(registry));
    (report, tele, artifacts)
}

/// Parse the `SCATTER_SHARDS` override (a positive integer forcing the
/// event-queue shard count, mainly for the determinism tests). Invalid
/// values warn once per process and fall back to the config's count.
fn env_shards() -> Option<usize> {
    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
    let raw = std::env::var("SCATTER_SHARDS").ok()?;
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => {
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "warning: invalid SCATTER_SHARDS={raw} (want a positive integer); \
                     using the config's shard count"
                );
            });
            None
        }
    }
}

/// Parse the `SCATTER_OBS_SAMPLE` override: the tail sampler's reservoir
/// rate (keep 1 in N healthy frames; anomalous frames are always kept).
/// Invalid values warn once and fall back to the config's rate.
fn env_obs_sample() -> Option<u64> {
    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
    let raw = std::env::var("SCATTER_OBS_SAMPLE").ok()?;
    match raw.parse::<u64>() {
        Ok(n) if n >= 1 => Some(n),
        _ => {
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "warning: invalid SCATTER_OBS_SAMPLE={raw} (want a positive integer); \
                     using the config's reservoir rate"
                );
            });
            None
        }
    }
}

/// Parse the `SCATTER_FLIGHTREC` override: per-ring flight-recorder
/// capacity (events kept per ring). Invalid values warn once and fall
/// back to the config's capacity. Shared with the runtime plane, whose
/// always-on recorder uses the same knob over its built-in default.
pub(crate) fn env_flightrec() -> Option<usize> {
    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
    let raw = std::env::var("SCATTER_FLIGHTREC").ok()?;
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => {
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "warning: invalid SCATTER_FLIGHTREC={raw} (want a positive integer); \
                     using the config's ring capacity"
                );
            });
            None
        }
    }
}

fn run_world(
    cfg: RunConfig,
    cost: CostModel,
    registry: Option<telemetry::Registry>,
) -> ((RunReport, DesTelemetry), trace::TraceLog, ObsArtifacts) {
    let mut root = SimRng::new(cfg.seed);
    let rng_net = root.split();
    let rng_service = root.split();
    let mut rng_misc = root.split();
    // Heartbeat jitter draws from its own stream, split off the root
    // ONLY when the detection leg is on: a resilience-off run takes the
    // exact same three splits as before and stays byte-identical.
    let rng_hb = cfg.resilience.detection.map(|_| root.split());

    // Scale-out plane (DESIGN.md §14). Sharding draws no randomness and
    // the cross-shard merge preserves execution order exactly, so the
    // shard count is free to vary (or be overridden) without touching
    // any output byte.
    let scale = cfg.scale;
    let streaming = scale.is_some_and(|sc| sc.streaming);
    let shards = env_shards()
        .or(scale.map(|sc| sc.shards))
        .unwrap_or(1)
        .max(1);
    // The autoscaler's signals are the ingress/drop time series, which
    // streaming metrics deliberately do not populate (DESIGN.md §14) —
    // a sited autoscale run would silently see zeros. Config error.
    assert!(
        !(streaming && cfg.autoscale.is_some()),
        "autoscale is unsupported under streaming scale metrics; use ScaleConfig::exact()"
    );

    // Topology + netem overrides on the client↔ingress link(s). At
    // scale the clients attach to per-site access nodes; `build_with_sites(1)`
    // reproduces the legacy topology exactly.
    let (mut topo, testbed, site_nodes) = match scale {
        Some(sc) => Testbed::build_with_sites(sc.sites),
        None => {
            let (topo, testbed) = Testbed::build();
            (topo, testbed, Vec::new())
        }
    };
    // Client-side endpoints for netem/burst overrides: every access
    // site at scale, the single legacy client host otherwise.
    let client_side: Vec<NodeId> = if site_nodes.is_empty() {
        vec![testbed.client_host]
    } else {
        site_nodes.clone()
    };
    let mut cluster = Cluster::testbed(testbed.e1, testbed.e2, testbed.cloud);
    if let Some(profile) = &cfg.netem {
        let ingress_machines = cfg
            .placement
            .replicas_of("primary")
            .expect("placement must include primary")
            .to_vec();
        for name in ingress_machines {
            let mi = cluster.machine_index(&name).expect("known machine");
            let node = cluster.machines()[mi].net;
            for &cs in &client_side {
                topo.connect(cs, node, profile.to_link());
            }
        }
    }
    let mut net = UdpNet::new(topo, rng_net);
    // Bursty access-network loss (extension): install Gilbert–Elliott
    // channels on both directions of every client↔ingress link.
    if let Some(profile) = &cfg.netem {
        if let Some(burst_len) = profile.burst_len {
            let ingress: Vec<NodeId> = cfg
                .placement
                .replicas_of("primary")
                .expect("placement must include primary")
                .iter()
                .map(|name| {
                    let mi = cluster.machine_index(name).expect("known machine");
                    cluster.machines()[mi].net
                })
                .collect();
            for node in ingress {
                for &cs in &client_side {
                    net.set_burst_channel(
                        cs,
                        node,
                        simnet::GilbertElliott::with_average_loss(profile.loss, burst_len),
                    );
                    net.set_burst_channel(
                        node,
                        cs,
                        simnet::GilbertElliott::with_average_loss(profile.loss, burst_len),
                    );
                }
            }
        }
    }
    let site_map = scale.map(|_| SiteMap::round_robin(cfg.clients, &site_nodes));

    // Deploy the placement through the orchestrator.
    let slas: Vec<ServiceSla> = SERVICE_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let kind = ServiceKind::from_index(i);
            ServiceSla::new(name, 0.5, 2.0, kind.needs_gpu())
        })
        .collect();
    let deployed = cluster
        .deploy_placement(&slas, &cfg.placement)
        .expect("placement must deploy");
    let slas_kept = slas.clone();

    // Materialize runtime slots in pipeline order.
    let mut services = Vec::new();
    let mut replicas: [Vec<usize>; 5] = Default::default();
    let mut instance_ids: Vec<orchestra::InstanceId> = Vec::new();
    for (i, name) in SERVICE_NAMES.iter().enumerate() {
        let kind = ServiceKind::from_index(i);
        let ids = deployed
            .iter()
            .find(|(s, _)| s == name)
            .map(|(_, ids)| ids.clone())
            .unwrap_or_default();
        for (r, id) in ids.iter().enumerate() {
            let machine = cluster.instance(*id).machine;
            let sidecar = make_sidecar(cfg.mode, &cost, &cluster, machine, i);
            let slot = services.len();
            services.push(SvcRuntime::new(kind, r, machine, sidecar));
            replicas[i].push(slot);
            instance_ids.push(*id);
        }
        assert!(
            !replicas[i].is_empty(),
            "placement is missing service {name}"
        );
    }

    // Frames are balanced round-robin everywhere — including across sift
    // replicas. The statefulness shows up one hop later: the frame stays
    // *tied* to the sift replica that processed it, so matching's fetch
    // cannot be re-balanced to an idle replica ("frames balanced across
    // sift instances remain tied to that replica due to state
    // restrictions").
    let balancers: [Balancer; 5] =
        std::array::from_fn(|i| Balancer::new(BalancerKind::RoundRobin, replicas[i].len()));

    let gpu_pools = cluster
        .machines()
        .iter()
        .map(|m| GpuPool::new(m.gpu_count.max(1) as usize))
        .collect();

    // Clients with deterministic phase offsets (or staggered arrivals).
    let clients: Vec<ClientState> = (0..cfg.clients)
        .map(|i| {
            let start = match cfg.stagger {
                Some(s) => SimTime::ZERO + s * i as u64,
                None => {
                    SimTime::ZERO
                        + SimDuration::from_secs_f64(
                            rng_misc.uniform(0.0, FRAME_PERIOD.as_secs_f64()),
                        )
                }
            };
            ClientState::new(i, start)
        })
        .collect();

    let mem_series = services.iter().map(|_| TimeSeries::new()).collect();
    let machine_mem = cluster
        .machines()
        .iter()
        .map(|_| TimeSeries::new())
        .collect();

    // Trace tracks: one per service instance per machine, one per client.
    // Registration is unconditional (cheap) so slot ↔ track stays aligned
    // whether or not tracing is on. The observatory's tail sampler
    // supersedes head sampling: every frame is traced and the
    // keep/discard decision happens at its terminal.
    let mut tracer = match (cfg.observatory, cfg.trace) {
        (Some(oc), _) => {
            let mut tc = oc.tail;
            // Fold the run seed in so the reservoir decorrelates across
            // seeds without the caller managing a second seed. The
            // decision stays a pure function of (seed, trace_id).
            tc.seed ^= cfg.seed;
            if let Some(n) = env_obs_sample() {
                tc.reservoir_1_in = n;
            }
            observatory::DesSink::tail(observatory::TailSampler::new(tc))
        }
        (None, Some(tc)) => observatory::DesSink::head(trace::Tracer::new(tc)),
        (None, None) => observatory::DesSink::disabled(),
    };
    let track_of_slot: Vec<trace::TrackId> = services
        .iter()
        .map(|svc| {
            tracer.register_track(
                format!("{}#{}", svc.kind.name(), svc.replica),
                cluster.machines()[svc.machine].name.clone(),
            )
        })
        .collect();
    // At scale, per-client tracks would overflow the u16 track id space
    // (and churn a String per client); all clients share one track — the
    // per-client distinction lives in the trace ctx, not the track.
    let client_tracks: Vec<trace::TrackId> = if scale.is_some() {
        let shared = tracer.register_track("clients".to_string(), "client-host");
        vec![shared; cfg.clients]
    } else {
        (0..cfg.clients)
            .map(|i| tracer.register_track(format!("client-{i}"), "client-host"))
            .collect()
    };

    let end_at = SimTime::ZERO + cfg.duration;
    let warmup_at = SimTime::ZERO + cfg.warmup;

    // Streaming mode: services fold arrivals/drops into counters over
    // the measurement window instead of per-event series.
    if streaming {
        for svc in &mut services {
            svc.streaming_window = Some((warmup_at, end_at));
        }
    }

    // Live telemetry handles (only if the caller passed a registry).
    let obs = registry.map(|reg| {
        let machine_names: Vec<String> =
            cluster.machines().iter().map(|m| m.name.clone()).collect();
        let mut obs = DesObs::new(reg, &machine_names);
        obs.slots = services
            .iter()
            .map(|svc| {
                obs.register_slot(
                    svc.kind.name(),
                    svc.replica,
                    &cluster.machines()[svc.machine].name,
                )
            })
            .collect();
        obs
    });

    // Observatory: flight recorder + world-phase profiler (both `None`
    // when `cfg.observatory` is unset — the hot paths then only pay a
    // branch-not-taken per site, same discipline as `obs`).
    let flight = cfg.observatory.map(|oc| {
        let cap = env_flightrec().unwrap_or(oc.flight_cap);
        // One ring per access site (clamped) plus ring 0 for the
        // control plane. Keyed by client/site — never by event-queue
        // shard — so dump contents survive `SCATTER_SHARDS` changes.
        let data_rings = scale.map_or(1, |sc| sc.sites).clamp(1, 15);
        observatory::FlightRecorder::new(1 + data_rings, cap)
    });
    let mut prof = cfg
        .observatory
        .map(|oc| observatory::PhaseProfiler::new(DES_PHASES, oc.prof_shift));
    if let (Some(p), Some(o)) = (prof.as_mut(), obs.as_ref()) {
        p.attach_registry(&o.registry, crate::obs::PLANE);
    }

    // Resilience-plane state (all `None`/empty when the plane is off).
    let detector = cfg.resilience.detection.map(|d| {
        let mut det = orchestra::FailureDetector::new(d.detector());
        for &id in &instance_ids {
            det.register(id, 0.0);
        }
        det
    });
    let ladder = cfg
        .resilience
        .ladder
        .map(|l| crate::resilience::OverloadController::new(l, cfg.clients));
    let derouted = vec![false; services.len()];
    let routable = replicas.clone();
    let wire = WireSim::build(&cfg);

    let mut world = PipelineWorld {
        cfg,
        cost,
        net,
        cluster,
        testbed,
        services,
        replicas,
        balancers,
        gpu_pools,
        clients,
        rng_service,
        rng_misc,
        mem_series,
        machine_mem,
        end_at,
        warmup_at,
        slas: slas_kept,
        scale_events: Vec::new(),
        breakdown_compute: Default::default(),
        breakdown_queue: Default::default(),
        breakdown_network: metrics::Summary::new(),
        tracer,
        track_of_slot,
        client_tracks,
        obs,
        instance_ids,
        detector,
        rng_hb,
        routable,
        derouted,
        crash_pending: HashMap::new(),
        inflight: HashMap::new(),
        ladder,
        resilience: crate::report::ResilienceReport::default(),
        wire,
        site_map,
        streaming,
        shards,
        scale_e2e: streaming.then(LogHistogram::for_latency_ms),
        flight,
        prof,
        slo_seen: 0,
    };

    let mut sim: SimW = Sim::with_shards(shards);
    // The simulator core's own pop/exec phase timers ride the same
    // sampling shift as the world profiler.
    if let Some(oc) = world.cfg.observatory {
        sim.enable_profiling(oc.prof_shift);
    }
    // Kick off client sources, keyed by access site so a client's whole
    // emission chain stays in its site's shard.
    for i in 0..world.clients.len() {
        let at = world.clients[i].start_at;
        let key = world.client_key(i);
        sim.schedule_at_keyed(key, at, move |w, s| client_emit(w, s, i));
    }
    // 1 Hz metric sampling.
    sim.schedule(SimDuration::from_secs(1), sample_metrics);
    // 5 Hz sidecar estimate refresh (scAtteR++): propagate each stage's
    // observed cost into upstream projections.
    if world.cfg.mode.sidecar_queue() {
        sim.schedule(SimDuration::from_millis(200), refresh_estimates);
    }
    // 4 Hz sift state eviction sweep (scAtteR only; harmless otherwise).
    sim.schedule(SimDuration::from_millis(250), evict_sweep);
    // Resilience: per-instance heartbeats + the detector's sweep loop.
    if let Some(det_cfg) = world.cfg.resilience.detection {
        for slot in 0..world.services.len() {
            sim.schedule(det_cfg.hb_interval, move |w, s| heartbeat(w, s, slot));
        }
        sim.schedule(det_cfg.hb_interval, detector_check);
    }
    // Resilience: the overload controller's backpressure sampling tick.
    if let Some(lcfg) = world.cfg.resilience.ladder {
        sim.schedule(lcfg.tick, ladder_tick);
    }
    // Autoscaler evaluation loop (first check after warmup + interval).
    if let Some(auto) = world.cfg.autoscale {
        sim.schedule_at(world.warmup_at + auto.interval, autoscale_check);
    }
    // Failure injection schedule.
    for (at, kind, replica) in world.cfg.failures.clone() {
        sim.schedule_at(SimTime::ZERO + at, move |w, s| {
            crash_instance(w, s, kind, replica)
        });
    }
    // Live-migration schedule.
    for (at, kind, replica, machine) in world.cfg.migrations.clone() {
        sim.schedule_at(SimTime::ZERO + at, move |w, s| {
            migrate_instance(w, s, kind, replica, &machine)
        });
    }

    sim.run_until(&mut world, end_at);
    let events_executed = sim.executed();
    let (log, tail_stats) = std::mem::take(&mut world.tracer).finish(end_at.as_nanos());
    let artifacts = ObsArtifacts {
        tail: tail_stats,
        flight_dumps: world
            .flight
            .as_ref()
            .map_or_else(Vec::new, |f| f.take_dumps()),
        prof: world.prof.as_ref().map(|p| p.snapshot()),
        sim_prof: sim.profile(),
    };
    let des_telemetry = match world.obs.take() {
        Some(obs) => DesTelemetry {
            slo_events: obs.slo_events,
            window_snapshots: obs.window_snapshots,
            slo: obs.slo,
        },
        None => DesTelemetry {
            slo_events: Vec::new(),
            window_snapshots: Vec::new(),
            slo: telemetry::SloTracker::new(telemetry::SloConfig::default()),
        },
    };
    (
        (build_report(world, events_executed), des_telemetry),
        log,
        artifacts,
    )
}

/// Network-loss drop reason: a multi-fragment datagram dies to
/// fragment loss, a single-fragment one to plain netem loss.
fn net_loss_reason(payload_bytes: usize) -> trace::DropReason {
    if simnet::Link::fragments(payload_bytes) > 1 {
        trace::DropReason::FragmentLoss
    } else {
        trace::DropReason::NetemLoss
    }
}

// ---------------------------------------------------------------------
// Event functions
// ---------------------------------------------------------------------

fn client_emit(w: &mut PipelineWorld, sim: &mut SimW, client: usize) {
    let now = sim.now();
    if now >= w.end_at {
        return;
    }
    let frame_no = w.clients[client].emitted;
    w.clients[client].emitted += 1;
    if now >= w.warmup_at {
        w.clients[client].emitted_measured += 1;
    }
    // Degradation ladder: the client's current rung shapes (or denies)
    // this capture.
    let level = w.ladder.as_ref().map_or(0, |l| l.level(client));
    let mut bytes = w.cost.payload_into(ServiceKind::Primary, w.cfg.mode);
    if level >= crate::resilience::LADDER_DOWNSCALE {
        let lcfg = w.cfg.resilience.ladder.expect("rung > 0 implies a ladder");
        bytes = ((bytes as f64) * lcfg.downscale_payload).max(1.0) as usize;
    }
    if let Some(ws) = &w.wire {
        // Wire model: the uplink carries what the real encoder pipeline
        // produces for this frame (overriding the abstract cost-model
        // payload, and any ladder downscale — the model owns the bytes).
        bytes = ws.frame_bytes(client, frame_no) as usize;
    }
    let mut msg = FrameMsg::new(client, frame_no, w.client_node(client), now, bytes);
    msg.quality = level.min(crate::resilience::LADDER_HALF_RATE);
    msg.trace = w.tracer.ctx(client as u16, frame_no as u32);
    w.tracer.emitted(msg.trace, now.as_nanos());
    if let Some(o) = &w.obs {
        o.frames_emitted.inc();
    }
    if level >= crate::resilience::LADDER_DENIED {
        // The ladder's last rung: admission denied with an explicit NACK
        // — the client knows immediately instead of silently losing the
        // frame past the knee.
        w.resilience.admission_nacks += 1;
        w.tracer.terminal(
            msg.trace,
            now.as_nanos(),
            trace::FrameFate::Dropped(trace::DropReason::AdmissionNack),
        );
        if let Some(o) = w.obs.as_mut() {
            o.slo_breach(now.as_secs_f64());
        }
    } else {
        if msg.quality >= crate::resilience::LADDER_DOWNSCALE {
            w.resilience.degraded_frames += 1;
        }
        arm_deadline(w, sim, client, frame_no, 0);
        send_uplink(w, sim, msg);
    }

    // Half-rate rungs skip every other slot on the capture grid (the
    // camera effectively runs at 15 FPS; skipped slots never become
    // frames, so the skipped frame numbers read as inter-update gaps).
    if w.ladder.as_ref().map_or(1, |l| l.period_factor(client)) == 2 {
        w.clients[client].emitted += 1;
    }
    // Next frame: grid-scheduled with per-frame capture jitter so
    // concurrent clients cannot phase-lock against each other.
    let jitter = SimDuration::from_millis_f64(w.rng_misc.uniform(0.0, w.cost.emit_jitter_ms));
    let next = w.clients[client].next_emit_at() + jitter;
    let key = w.client_key(client);
    sim.schedule_at_keyed(key, next, move |w, s| client_emit(w, s, client));
}

/// Re-emit a fresh capture after a response deadline expired. AR cannot
/// usefully re-send the stale original pixels, so the retry is a *new*
/// capture of the scene at `now` — staleness filtering measures from the
/// retry's own emission — carrying the same frame number with a distinct
/// per-attempt trace identity (frame conservation holds attempt by
/// attempt).
fn client_retry(w: &mut PipelineWorld, sim: &mut SimW, client: usize, frame_no: u64, attempt: u8) {
    let now = sim.now();
    if now >= w.end_at {
        return;
    }
    let level = w.ladder.as_ref().map_or(0, |l| l.level(client));
    if level >= crate::resilience::LADDER_DENIED {
        // Admission control outranks the retry policy.
        return;
    }
    let mut bytes = w.cost.payload_into(ServiceKind::Primary, w.cfg.mode);
    if level >= crate::resilience::LADDER_DOWNSCALE {
        let lcfg = w.cfg.resilience.ladder.expect("rung > 0 implies a ladder");
        bytes = ((bytes as f64) * lcfg.downscale_payload).max(1.0) as usize;
    }
    if let Some(ws) = &w.wire {
        // A retry re-captures the scene at the same grid slot, so it
        // re-ships the same frame's schedule entry.
        bytes = ws.frame_bytes(client, frame_no) as usize;
    }
    let mut msg = FrameMsg::new(client, frame_no, w.client_node(client), now, bytes);
    msg.quality = level.min(crate::resilience::LADDER_HALF_RATE);
    msg.attempt = attempt;
    msg.trace = w
        .tracer
        .ctx(client as u16, frame_no as u32 | ((attempt as u32) << 24));
    w.tracer.emitted(msg.trace, now.as_nanos());
    if let Some(o) = &w.obs {
        o.frames_emitted.inc();
    }
    w.resilience.retries += 1;
    arm_deadline(w, sim, client, frame_no, attempt);
    send_uplink(w, sim, msg);
}

/// Ship a client frame toward `primary`. Under the v2 wire model the
/// send is delayed by the client-side codec cost (delta + compression
/// are work the capture pipeline must do before the first datagram
/// leaves); otherwise it goes out immediately, exactly as before.
fn send_uplink(w: &mut PipelineWorld, sim: &mut SimW, msg: FrameMsg) {
    let codec_ms = match &w.wire {
        Some(ws) if ws.cfg.v2 => ws.cfg.codec_cost_ms,
        _ => 0.0,
    };
    let src = msg.client_addr;
    if codec_ms > 0.0 {
        sim.schedule(SimDuration::from_millis_f64(codec_ms), move |w, s| {
            route_to_service(w, s, ServiceKind::Primary, msg, src)
        });
    } else {
        route_to_service(w, sim, ServiceKind::Primary, msg, src);
    }
}

/// Arm (or re-arm, for a retry) the client's response deadline for one
/// frame attempt. No-op when the deadline leg is off.
fn arm_deadline(w: &mut PipelineWorld, sim: &mut SimW, client: usize, frame_no: u64, attempt: u8) {
    let Some(dcfg) = w.cfg.resilience.deadline else {
        return;
    };
    let entry = w.inflight.entry((client, frame_no)).or_default();
    entry.attempt = attempt;
    sim.schedule(dcfg.deadline, move |w, s| {
        deadline_expire(w, s, client, frame_no, attempt)
    });
}

/// A frame attempt's response deadline fired: if the result has not
/// come back, give up on the attempt (its late result, should one still
/// arrive, re-attributes to `ResponseDeadline`) and schedule a
/// backed-off retry while the budget lasts.
fn deadline_expire(
    w: &mut PipelineWorld,
    sim: &mut SimW,
    client: usize,
    frame_no: u64,
    attempt: u8,
) {
    let now = sim.now();
    let Some(dcfg) = w.cfg.resilience.deadline else {
        return;
    };
    let Some(entry) = w.inflight.get_mut(&(client, frame_no)) else {
        return;
    };
    if entry.settled || entry.attempt != attempt {
        return;
    }
    entry.expired_attempts = attempt + 1;
    w.resilience.deadline_expired += 1;
    if (attempt as u32) < dcfg.max_retries {
        let delay = dcfg.retry_delay(attempt as u32 + 1);
        if now + delay < w.end_at {
            sim.schedule(delay, move |w, s| {
                client_retry(w, s, client, frame_no, attempt + 1)
            });
        }
    }
}

/// Pick a replica via the service's balancer and ship the message over
/// the network from `src_node`.
fn route_to_service(
    w: &mut PipelineWorld,
    sim: &mut SimW,
    kind: ServiceKind,
    mut msg: FrameMsg,
    src_node: simnet::NodeId,
) {
    let ki = kind.index();
    if w.routable[ki].is_empty() {
        // Every replica of the next service is detected-failed (only
        // reachable with the detection leg on): an explicit, counted
        // outage drop instead of a datagram into a dead port.
        let now = sim.now();
        w.resilience.outage_drops += 1;
        w.tracer.terminal(
            msg.trace,
            now.as_nanos(),
            trace::FrameFate::Dropped(trace::DropReason::ServiceOutage),
        );
        if let Some(o) = w.obs.as_mut() {
            o.slo_breach(now.as_secs_f64());
        }
        return;
    }
    let n_replicas = w.balancers[ki].n_replicas();
    // matching must reach the sift replica holding the frame state; that
    // path bypasses this router (see send_fetch). Frames to sift record
    // their replica binding for the later fetch.
    let replica = w.balancers[ki].pick(msg.client as u64);
    // Identical to `routable[ki][replica]` whenever balancer and map are
    // in sync (always, outside a mid-outage autoscale race).
    let slot = w.routable[ki][replica % w.routable[ki].len()];
    if w.derouted[slot] {
        // Failover correctness: the balancer must never hand a frame to
        // an instance the detector already removed. Counted (and gated
        // to zero) rather than asserted so a regression is observable.
        w.resilience.post_detection_misroutes += 1;
    }
    if kind == ServiceKind::Sift {
        // The binding is recorded as the *stable* replica ordinal (the
        // index into `replicas`), not the balancer position — failover
        // compacts balancer positions but never reorders `replicas`.
        msg.sift_replica = w.replicas[ki].iter().position(|&s| s == slot);
    }
    msg.step = kind;
    let dst_node = w.cluster.machines()[w.services[slot].machine].net;
    let lb_extra = if n_replicas > 1 {
        SimDuration::from_millis_f64(w.cost.lb_overhead_ms)
    } else {
        SimDuration::ZERO
    };
    let now = sim.now();
    // An uplink send is one originating at the frame's own client node
    // (legacy: always `client-host`; at scale: the client's site).
    if kind == ServiceKind::Primary && src_node == msg.client_addr {
        if let Some(ws) = w.wire.as_mut() {
            // Bytes are counted where they are *offered* — the same
            // send-site definition the runtime's per-socket counter
            // uses, so the two planes agree datagram for datagram.
            ws.uplink_bytes += msg.payload_bytes as u64;
            let idx = ws.sent;
            ws.sent += 1;
            if idx < ws.cfg.corrupt_first {
                msg.corrupted = true;
            }
        }
    }
    let t0 = w.prof.as_mut().and_then(|p| p.enter(PH_NET));
    let delivery = w.net.send(src_node, dst_node, msg.payload_bytes, now);
    if let Some(p) = w.prof.as_mut() {
        p.exit(PH_NET, t0);
    }
    match delivery {
        simnet::Delivery::Lost => {
            let reason = net_loss_reason(msg.payload_bytes);
            w.tracer
                .terminal(msg.trace, now.as_nanos(), trace::FrameFate::Dropped(reason));
            if let Some(o) = w.obs.as_mut() {
                match reason {
                    trace::DropReason::FragmentLoss => o.net_drop_fragment.inc(),
                    _ => o.net_drop_netem.inc(),
                }
                o.slo_breach(now.as_secs_f64());
            }
        }
        simnet::Delivery::Delayed(d) => {
            // The transit span is recorded up front (the arrival event may
            // fall past the run's end); clamp to the horizon so run-end
            // terminals never precede a span's end.
            let arrive_ns = (now + d + lb_extra).as_nanos().min(w.end_at.as_nanos());
            w.tracer.span(
                msg.trace,
                w.track_of_slot[slot],
                ki as u8,
                trace::Phase::NetworkTransit,
                now.as_nanos(),
                arrive_ns,
            );
            sim.schedule(d + lb_extra, move |w, s| frame_arrive(w, s, slot, msg));
        }
    }
}

fn frame_arrive(w: &mut PipelineWorld, sim: &mut SimW, slot: usize, msg: FrameMsg) {
    let now = sim.now();
    w.services[slot].record_ingress(now);
    if let Some(o) = &w.obs {
        o.slots[slot].ingress.inc();
    }
    if w.services[slot].down_until.is_some() {
        // Nothing is listening on a crashed container's port.
        w.services[slot].drops.down += 1;
        w.services[slot].record_drop(now);
        w.tracer.terminal(
            msg.trace,
            now.as_nanos(),
            trace::FrameFate::Dropped(trace::DropReason::Crash),
        );
        if let Some(o) = w.obs.as_mut() {
            o.slots[slot].drop_crash.inc();
            o.slo_breach(now.as_secs_f64());
        }
        return;
    }
    // v1 ingress has no integrity check: a corrupted payload is accepted
    // silently and sails on — the contrast the wire experiment makes
    // visible. Only a v2 ingress catches the damage here.
    if msg.corrupted
        && msg.step == ServiceKind::Primary
        && w.wire.as_ref().is_some_and(|ws| ws.cfg.v2)
    {
        // v2 ingress: the envelope CRC catches the in-flight damage
        // before anything is parsed — a counted, attributed drop.
        if let Some(ws) = w.wire.as_mut() {
            ws.invalid_crc += 1;
        }
        w.services[slot].record_drop(now);
        w.tracer.terminal(
            msg.trace,
            now.as_nanos(),
            trace::FrameFate::Dropped(trace::DropReason::InvalidCrc),
        );
        if let Some(o) = w.obs.as_mut() {
            o.slo_breach(now.as_secs_f64());
        }
        return;
    }
    if !w.cfg.mode.sidecar_queue() {
        // Drop-on-busy ingress.
        if w.services[slot].busy {
            w.services[slot].drops.busy += 1;
            w.services[slot].record_drop(now);
            w.tracer.terminal(
                msg.trace,
                now.as_nanos(),
                trace::FrameFate::Dropped(trace::DropReason::BusyIngress),
            );
            if let Some(o) = w.obs.as_mut() {
                o.slots[slot].drop_busy.inc();
                o.slo_breach(now.as_secs_f64());
            }
            return;
        }
        accept_frame(w, sim, slot, msg);
    } else {
        let rejected = {
            let svc = &mut w.services[slot];
            let sc = svc.sidecar.as_mut().expect("sidecar mode has sidecars");
            sc.enqueue_or_reject(msg, now)
        };
        if let Some(rejected) = rejected {
            w.services[slot].drops.stale += 1;
            w.services[slot].record_drop(now);
            w.tracer.terminal(
                rejected.trace,
                now.as_nanos(),
                trace::FrameFate::Dropped(trace::DropReason::ThresholdFilter),
            );
            if let Some(o) = w.obs.as_mut() {
                o.slots[slot].drop_threshold.inc();
                o.slo_breach(now.as_secs_f64());
            }
        }
        if !w.services[slot].busy {
            pull_from_sidecar(w, sim, slot);
        }
    }
}

/// scAtteR++: pull the next fresh frame from the sidecar, if any.
fn pull_from_sidecar(w: &mut PipelineWorld, sim: &mut SimW, slot: usize) {
    let now = sim.now();
    let kind_idx = w.services[slot].kind.index();
    let (msg, waited, filtered) = {
        let svc = &mut w.services[slot];
        let sc = svc.sidecar.as_mut().expect("scAtteR++ has sidecars");
        let (outcome, mut msg, filtered) = sc.dequeue_with_drops(now);
        let waited = match outcome {
            crate::sidecar::Dequeue::Serve(wt) => Some(wt),
            crate::sidecar::Dequeue::Empty => None,
        };
        if let (Some(wt), Some(m)) = (waited, msg.as_mut()) {
            m.stage_queue_ms[kind_idx] += wt.as_millis_f64();
        }
        (msg, waited, filtered)
    };
    if !filtered.is_empty() {
        w.services[slot].drops.stale += filtered.len() as u64;
        w.services[slot].record_drop(now);
        for f in &filtered {
            w.tracer.terminal(
                f.trace,
                now.as_nanos(),
                trace::FrameFate::Dropped(trace::DropReason::ThresholdFilter),
            );
        }
        if let Some(o) = w.obs.as_mut() {
            o.slots[slot].drop_threshold.add(filtered.len() as u64);
            for _ in &filtered {
                o.slo_breach(now.as_secs_f64());
            }
        }
    }
    if let Some(msg) = msg {
        if let Some(wt) = waited {
            w.tracer.span(
                msg.trace,
                w.track_of_slot[slot],
                kind_idx as u8,
                trace::Phase::SidecarHold,
                now.as_nanos().saturating_sub(wt.as_nanos()),
                now.as_nanos(),
            );
        }
        accept_frame(w, sim, slot, msg);
    }
}

/// A service takes ownership of a frame: becomes busy and either starts
/// compute (everything except scAtteR `matching`) or launches the
/// feature fetch (scAtteR `matching`).
fn accept_frame(w: &mut PipelineWorld, sim: &mut SimW, slot: usize, msg: FrameMsg) {
    w.services[slot].busy = true;
    let kind = w.services[slot].kind;
    if kind == ServiceKind::Matching && !w.cfg.mode.stateless_sift() {
        send_fetch(w, sim, slot, msg);
    } else {
        start_compute(w, sim, slot, msg);
    }
}

/// Charge the machine for this service's execution and schedule its
/// completion. GPU services contend for the machine's token pool.
fn start_compute(w: &mut PipelineWorld, sim: &mut SimW, slot: usize, msg: FrameMsg) {
    let now = sim.now();
    let kind = w.services[slot].kind;
    let machine = w.services[slot].machine;
    let spec = &w.cluster.machines()[machine];
    let arch_mult = spec.gpu_arch.map_or(1.0, |a| a.speed_multiplier());
    let occ_mult = spec.gpu_arch.map_or(1.0, |a| a.gpu_occupancy_multiplier());
    let virtualized = spec.virtualized;
    // Wall time (what the service latency metric sees) vs GPU occupancy
    // (what contends on the token pool): a virtualized V100 is slow in
    // wall time without saturating its GPU.
    let t0 = w.prof.as_mut().and_then(|p| p.enter(PH_COST));
    let duration = w
        .cost
        .sample_service_time(kind, arch_mult, virtualized, &mut w.rng_service);
    if let Some(p) = w.prof.as_mut() {
        p.exit(PH_COST, t0);
    }
    // Pyramid-downscaled captures (ladder rung ≥ 1) cost proportionally
    // less work at every stage. The sample above is drawn regardless so
    // the RNG stream stays aligned with a ladder-off run.
    let duration = if msg.quality >= crate::resilience::LADDER_DOWNSCALE {
        let f = w.cfg.resilience.ladder.map_or(1.0, |l| l.downscale_compute);
        SimDuration::from_secs_f64(duration.as_secs_f64() * f)
    } else {
        duration
    };
    // Processor-sharing GPU contention: the kernel starts now, slowed by
    // the machine's current GPU oversubscription.
    let (wall, occupancy, ps_weight) = if kind.needs_gpu() {
        let weight = (occ_mult / arch_mult).min(1.0);
        let slowdown = w.gpu_pools[machine].ps_begin(weight);
        let wall = SimDuration::from_secs_f64(duration.as_secs_f64() * slowdown);
        let occ = SimDuration::from_secs_f64(duration.as_secs_f64() * weight);
        (wall, occ, weight)
    } else {
        (duration, SimDuration::ZERO, 0.0)
    };
    let completion = now + wall;
    // Hardware meters: GPU time for GPU stages, CPU for primary plus a
    // driver-side fraction for GPU stages.
    let meters = w.cluster.meters_mut(machine);
    if kind.needs_gpu() {
        meters.gpu.add_busy(completion, occupancy);
        meters.cpu.add_busy(
            completion,
            SimDuration::from_secs_f64(duration.as_secs_f64() * w.cost.gpu_cpu_fraction),
        );
    } else {
        meters.cpu.add_busy(completion, duration);
    }
    let accepted_at = now;
    let generation = w.services[slot].generation;
    sim.schedule_at(completion, move |w, s| {
        if ps_weight > 0.0 {
            let m = w.services[slot].machine;
            w.gpu_pools[m].ps_end(ps_weight);
        }
        // A crash between acceptance and completion voids the execution.
        if w.services[slot].generation != generation {
            w.tracer.terminal(
                msg.trace,
                s.now().as_nanos(),
                trace::FrameFate::Dropped(trace::DropReason::Crash),
            );
            if let Some(o) = w.obs.as_mut() {
                o.slo_breach(s.now().as_secs_f64());
            }
            return;
        }
        complete_compute(w, s, slot, msg, accepted_at)
    });
}

fn complete_compute(
    w: &mut PipelineWorld,
    sim: &mut SimW,
    slot: usize,
    mut msg: FrameMsg,
    accepted_at: SimTime,
) {
    let now = sim.now();
    let kind = w.services[slot].kind;
    let observed_ms = now.saturating_since(accepted_at).as_millis_f64();
    w.tracer.span(
        msg.trace,
        w.track_of_slot[slot],
        kind.index() as u8,
        trace::Phase::Compute,
        accepted_at.as_nanos(),
        now.as_nanos(),
    );
    msg.stage_compute_ms[kind.index()] += observed_ms;
    w.services[slot].service_latency_ms.record(observed_ms);
    w.services[slot].proc_series.push(now, observed_ms);
    // Feed the sidecar's projection with what the service actually costs
    // under current contention (EWMA over recent executions).
    let ewma = if w.services[slot].ewma_service_ms == 0.0 {
        observed_ms
    } else {
        0.9 * w.services[slot].ewma_service_ms + 0.1 * observed_ms
    };
    w.services[slot].ewma_service_ms = ewma;
    if let Some(sc) = w.services[slot].sidecar.as_mut() {
        // The sidecar folds the raw observation into its own running
        // EWMA (seeded from the cost model at deploy time) — the same
        // estimate its backpressure export is built from.
        sc.observe_service_ms(observed_ms);
    }
    w.services[slot].processed += 1;
    w.services[slot].busy = false;
    if let Some(o) = &w.obs {
        o.slots[slot].latency_ms.record(observed_ms);
        o.slots[slot].processed.inc();
    }

    let src_node = w.cluster.machines()[w.services[slot].machine].net;
    match kind {
        ServiceKind::Primary => {
            msg.payload_bytes = w.cost.payload_into(ServiceKind::Sift, w.cfg.mode);
            route_to_service(w, sim, ServiceKind::Sift, msg, src_node);
        }
        ServiceKind::Sift => {
            if !w.cfg.mode.stateless_sift() {
                // Stateful: park the features until matching fetches them.
                let key = msg.key();
                let bytes = w.cost.state_entry_bytes;
                w.services[slot].store_state(
                    key,
                    StateEntry {
                        stored_at: now,
                        bytes,
                    },
                );
            }
            msg.payload_bytes = w.cost.payload_into(ServiceKind::Encoding, w.cfg.mode);
            route_to_service(w, sim, ServiceKind::Encoding, msg, src_node);
        }
        ServiceKind::Encoding => {
            msg.payload_bytes = w.cost.payload_into(ServiceKind::Lsh, w.cfg.mode);
            route_to_service(w, sim, ServiceKind::Lsh, msg, src_node);
        }
        ServiceKind::Lsh => {
            msg.payload_bytes = w.cost.payload_into(ServiceKind::Matching, w.cfg.mode);
            route_to_service(w, sim, ServiceKind::Matching, msg, src_node);
        }
        ServiceKind::Matching => {
            msg.payload_bytes = w.cost.result_bytes();
            deliver_result(w, sim, msg, src_node);
        }
    }

    // Sidecar modes: the freed service immediately pulls the next queued
    // frame. Stateful modes: a freed sift serves buffered fetches first.
    if kind == ServiceKind::Sift && !w.cfg.mode.stateless_sift() {
        drain_fetch_queue(w, sim, slot);
    }
    if w.cfg.mode.sidecar_queue() {
        pull_from_sidecar(w, sim, slot);
    }
}

/// scAtteR `matching`: request the frame's feature state from the sift
/// replica that produced it. `matching` stays busy ("busy waiting for
/// sift's output") until the response or the timeout.
fn send_fetch(w: &mut PipelineWorld, sim: &mut SimW, slot: usize, mut msg: FrameMsg) {
    let now = sim.now();
    // Stamp the fetch start; the wait until the response is charged to
    // matching's queue share of the latency breakdown.
    msg.stage_queue_ms[ServiceKind::Matching.index()] -= now.as_millis_f64();
    let sift_replica = msg
        .sift_replica
        .expect("frame reached matching without a sift binding");
    let sift_slot = w.replicas[ServiceKind::Sift.index()][sift_replica];
    let src_node = w.cluster.machines()[w.services[slot].machine].net;
    let dst_node = w.cluster.machines()[w.services[sift_slot].machine].net;

    let timeout_id = {
        let key = msg.key();
        sim.schedule(w.cost.fetch_timeout(), move |w, s| {
            fetch_timeout(w, s, slot, key)
        })
    };
    w.services[slot].pending_fetch = Some((msg, timeout_id, now));

    match w
        .net
        .send(src_node, dst_node, w.cost.fetch_request_bytes(), now)
    {
        simnet::Delivery::Lost => {}
        simnet::Delivery::Delayed(d) => {
            sim.schedule(d, move |w, s| fetch_arrive_at_sift(w, s, sift_slot, slot));
        }
    }
}

/// Socket-buffer bound for fetch requests parked at a busy sift.
const FETCH_QUEUE_CAP: usize = 16;

/// The fetch request reaches sift. The tiny request datagram sits in the
/// kernel socket buffer while sift is busy (overflow is dropped and the
/// matching timeout fires); an idle sift serves it and ships the features.
fn fetch_arrive_at_sift(
    w: &mut PipelineWorld,
    sim: &mut SimW,
    sift_slot: usize,
    matching_slot: usize,
) {
    let key = match &w.services[matching_slot].pending_fetch {
        Some((msg, _, _)) => msg.key(),
        // Matching already timed out; nothing to serve.
        None => return,
    };
    if w.services[sift_slot].busy {
        if w.services[sift_slot].fetch_queue.len() >= FETCH_QUEUE_CAP {
            w.services[sift_slot].fetch_dropped += 1;
            if let Some(o) = &w.obs {
                o.slots[sift_slot].fetch_dropped.inc();
            }
            return;
        }
        w.services[sift_slot]
            .fetch_queue
            .push_back((matching_slot, key));
        return;
    }
    serve_fetch(w, sim, sift_slot, matching_slot, key);
}

/// Execute one fetch on an idle sift.
fn serve_fetch(
    w: &mut PipelineWorld,
    sim: &mut SimW,
    sift_slot: usize,
    matching_slot: usize,
    key: (usize, u64),
) {
    if !w.services[sift_slot].state_store.contains_key(&key) {
        // State evicted (or this is a different in-flight frame): the
        // matching timeout handles the loss. Move on to any queued fetch.
        drain_fetch_queue(w, sim, sift_slot);
        return;
    }
    w.services[sift_slot].busy = true;
    let machine = w.services[sift_slot].machine;
    let arch_mult = w.cluster.machines()[machine]
        .gpu_arch
        .map_or(1.0, |a| a.speed_multiplier());
    let d = w.cost.sample_fetch_time(arch_mult, &mut w.rng_service);
    let completion = sim.now() + d;
    w.cluster.meters_mut(machine).cpu.add_busy(completion, d);
    sim.schedule_at(completion, move |w, s| {
        fetch_served(w, s, sift_slot, matching_slot, key)
    });
}

/// A sift that just went idle picks up the next buffered fetch request.
fn drain_fetch_queue(w: &mut PipelineWorld, sim: &mut SimW, sift_slot: usize) {
    if w.services[sift_slot].busy {
        return;
    }
    if let Some((matching_slot, key)) = w.services[sift_slot].fetch_queue.pop_front() {
        // Skip fetches whose matching side already gave up.
        let still_wanted = w.services[matching_slot]
            .pending_fetch
            .as_ref()
            .is_some_and(|(m, _, _)| m.key() == key);
        if still_wanted {
            serve_fetch(w, sim, sift_slot, matching_slot, key);
        } else {
            drain_fetch_queue(w, sim, sift_slot);
        }
    }
}

fn fetch_served(
    w: &mut PipelineWorld,
    sim: &mut SimW,
    sift_slot: usize,
    matching_slot: usize,
    key: (usize, u64),
) {
    w.services[sift_slot].busy = false;
    drain_fetch_queue(w, sim, sift_slot);
    if w.services[sift_slot].state_store.remove(&key).is_none() {
        return;
    }
    w.services[sift_slot].fetch_served += 1;
    if let Some(o) = &w.obs {
        o.slots[sift_slot].fetch_served.inc();
    }
    let src_node = w.cluster.machines()[w.services[sift_slot].machine].net;
    let dst_node = w.cluster.machines()[w.services[matching_slot].machine].net;
    match w
        .net
        .send(src_node, dst_node, w.cost.fetch_response_bytes(), sim.now())
    {
        simnet::Delivery::Lost => {}
        simnet::Delivery::Delayed(d) => {
            sim.schedule(d, move |w, s| fetch_response(w, s, matching_slot, key));
        }
    }
}

/// Features arrived back at matching: cancel the timeout and run the
/// actual pose-estimation compute.
fn fetch_response(w: &mut PipelineWorld, sim: &mut SimW, matching_slot: usize, key: (usize, u64)) {
    let Some((mut msg, timeout_id, sent_at)) = w.services[matching_slot].pending_fetch.take()
    else {
        return;
    };
    if msg.key() != key {
        // A stale response for a frame matching already gave up on.
        w.services[matching_slot].pending_fetch = Some((msg, timeout_id, sent_at));
        return;
    }
    sim.cancel(timeout_id);
    // Close the fetch-wait stamp opened in send_fetch.
    msg.stage_queue_ms[ServiceKind::Matching.index()] += sim.now().as_millis_f64();
    // The fetch-wait span subsumes the fetch datagrams' transit and
    // sift's service time — the dependency loop's direct cost.
    w.tracer.span(
        msg.trace,
        w.track_of_slot[matching_slot],
        ServiceKind::Matching.index() as u8,
        trace::Phase::FetchWait,
        sent_at.as_nanos(),
        sim.now().as_nanos(),
    );
    start_compute(w, sim, matching_slot, msg);
}

fn fetch_timeout(w: &mut PipelineWorld, sim: &mut SimW, matching_slot: usize, key: (usize, u64)) {
    let now = sim.now();
    let Some((msg, _, sent_at)) = &w.services[matching_slot].pending_fetch else {
        return;
    };
    if msg.key() != key {
        return;
    }
    let (ctx, sent_at) = (msg.trace, *sent_at);
    w.services[matching_slot].pending_fetch = None;
    w.services[matching_slot].drops.fetch_timeout += 1;
    w.services[matching_slot].record_drop(now);
    w.services[matching_slot].busy = false;
    // Record where the frame's last milliseconds went before attributing
    // the drop: it died busy-waiting on sift.
    w.tracer.span(
        ctx,
        w.track_of_slot[matching_slot],
        ServiceKind::Matching.index() as u8,
        trace::Phase::FetchWait,
        sent_at.as_nanos(),
        now.as_nanos(),
    );
    w.tracer.terminal(
        ctx,
        now.as_nanos(),
        trace::FrameFate::Dropped(trace::DropReason::StaleFetch),
    );
    if let Some(o) = w.obs.as_mut() {
        o.slots[matching_slot].drop_stale_fetch.inc();
        o.slo_breach(now.as_secs_f64());
    }
}

/// Send the processed frame (bounding boxes) back to its client.
fn deliver_result(w: &mut PipelineWorld, sim: &mut SimW, msg: FrameMsg, src_node: simnet::NodeId) {
    let now = sim.now();
    let t0 = w.prof.as_mut().and_then(|p| p.enter(PH_DELIVER));
    let delivery = w
        .net
        .send(src_node, msg.client_addr, msg.payload_bytes, now);
    if let Some(p) = w.prof.as_mut() {
        p.exit(PH_DELIVER, t0);
    }
    match delivery {
        simnet::Delivery::Lost => {
            let reason = net_loss_reason(msg.payload_bytes);
            w.tracer
                .terminal(msg.trace, now.as_nanos(), trace::FrameFate::Dropped(reason));
            if let Some(o) = w.obs.as_mut() {
                match reason {
                    trace::DropReason::FragmentLoss => o.net_drop_fragment.inc(),
                    _ => o.net_drop_netem.inc(),
                }
                o.slo_breach(now.as_secs_f64());
            }
        }
        simnet::Delivery::Delayed(d) => {
            let arrive_ns = (now + d).as_nanos().min(w.end_at.as_nanos());
            w.tracer.span(
                msg.trace,
                w.client_tracks[msg.client],
                trace::STAGE_CLIENT,
                trace::Phase::NetworkTransit,
                now.as_nanos(),
                arrive_ns,
            );
            sim.schedule(d, move |w, s| {
                let now = s.now();
                // Deadline leg: a result whose attempt already expired
                // (or whose frame was settled by another attempt) is
                // re-attributed, not double-counted.
                if w.cfg.resilience.deadline.is_some() {
                    let late = match w.inflight.get_mut(&msg.key()) {
                        Some(e) => {
                            if e.settled || msg.attempt < e.expired_attempts {
                                true
                            } else {
                                e.settled = true;
                                false
                            }
                        }
                        None => false,
                    };
                    if late {
                        w.resilience.late_completions += 1;
                        w.tracer.terminal(
                            msg.trace,
                            now.as_nanos(),
                            trace::FrameFate::Dropped(trace::DropReason::ResponseDeadline),
                        );
                        if let Some(o) = w.obs.as_mut() {
                            o.slo_breach(now.as_secs_f64());
                        }
                        return;
                    }
                }
                w.tracer.terminal_with_emit(
                    msg.trace,
                    msg.emitted_at.as_nanos(),
                    now.as_nanos(),
                    trace::FrameFate::Completed,
                );
                let e2e_ms = now.saturating_since(msg.emitted_at).as_millis_f64();
                for i in 0..5 {
                    w.breakdown_compute[i].record(msg.stage_compute_ms[i]);
                    w.breakdown_queue[i].record(msg.stage_queue_ms[i].max(0.0));
                }
                w.breakdown_network
                    .record((e2e_ms - msg.total_compute_ms() - msg.total_queue_ms()).max(0.0));
                if let Some(o) = w.obs.as_mut() {
                    o.frames_completed.inc();
                    o.e2e_ms.record(e2e_ms);
                    o.slo_complete(now.as_secs_f64(), e2e_ms);
                }
                if w.streaming {
                    let (ws, we) = (w.warmup_at, w.end_at);
                    let e2e = w.clients[msg.client].record_completion_streaming(
                        msg.frame_no,
                        msg.emitted_at,
                        now,
                        ws,
                        we,
                    );
                    if let Some(h) = w.scale_e2e.as_mut() {
                        h.record(e2e);
                    }
                } else {
                    w.clients[msg.client].record_completion(msg.frame_no, msg.emitted_at, now);
                }
                // A completion belongs to the measurement window iff its
                // *emission* did — otherwise warmup-boundary frames can
                // push the success ratio past 1.
                if msg.emitted_at >= w.warmup_at {
                    w.clients[msg.client].completed_measured += 1;
                }
            });
        }
    }
}

/// 1 Hz resident-memory sampling (per instance and per machine).
fn sample_metrics(w: &mut PipelineWorld, sim: &mut SimW) {
    let now = sim.now();
    let t0 = w.prof.as_mut().and_then(|p| p.enter(PH_SLO));
    let mut machine_totals = vec![0.0f64; w.cluster.machines().len()];
    for slot in 0..w.services.len() {
        let svc = &w.services[slot];
        let base = w.cost.base_memory_gb[svc.kind.index()];
        let state_gb = svc.state_bytes() as f64 / 1e9;
        let queue_gb = svc
            .sidecar
            .as_ref()
            .map_or(0.0, |sc| (sc.len() * w.cost.queue_slot_bytes) as f64 / 1e9);
        let total = base + state_gb + queue_gb;
        w.mem_series[slot].push(now, total);
        machine_totals[svc.machine] += total;
        if let Some(o) = &w.obs {
            o.slots[slot].memory_gb.set(total);
            // Queue depth: the sidecar queue (scAtteR++) or the fetch
            // requests parked at a busy sift (scAtteR).
            let depth = svc
                .sidecar
                .as_ref()
                .map_or(svc.fetch_queue.len(), |sc| sc.len());
            o.slots[slot].queue_depth.set(depth as f64);
        }
    }
    for (mi, total) in machine_totals.iter().enumerate() {
        w.machine_mem[mi].push(now, *total);
        if let Some(o) = &w.obs {
            o.machine_mem[mi].set(*total);
        }
    }
    if w.obs.is_some() {
        // CPU/GPU proxy gauges from the cluster's hardware meters, and
        // the SLO state machine's 1 Hz evaluation.
        let hw = w.cluster.hardware_snapshot(now);
        let names: Vec<String> = w
            .cluster
            .machines()
            .iter()
            .map(|m| m.name.clone())
            .collect();
        if let Some(o) = w.obs.as_mut() {
            for (mi, name) in names.iter().enumerate() {
                let (cpu, gpu, _) = hw[name];
                o.machine_cpu[mi].set(cpu);
                o.machine_gpu[mi].set(gpu);
            }
            o.tick(now.as_secs_f64());
        }
    }
    // Flight recorder: mirror new SLO transitions into the control
    // ring; a burn-rate *alert* freezes a dump (a clear does not —
    // recovery is not an anomaly).
    let (mut alerts, mut clears) = (0u64, 0u64);
    if let Some(o) = &w.obs {
        for ev in &o.slo_events[w.slo_seen..] {
            match ev.kind {
                telemetry::SloEventKind::BurnRateAlert { .. } => alerts += 1,
                telemetry::SloEventKind::BurnRateClear { .. } => clears += 1,
            }
        }
        w.slo_seen = o.slo_events.len();
    }
    if let Some(fr) = &w.flight {
        for _ in 0..alerts {
            fr.record(0, now.as_nanos(), observatory::flight::KIND_SLO_ALERT, 0, 0);
        }
        for _ in 0..clears {
            fr.record(0, now.as_nanos(), observatory::flight::KIND_SLO_CLEAR, 0, 0);
        }
        if alerts > 0 {
            fr.trigger(now.as_nanos(), "slo-alert");
        }
    }
    if let Some(p) = w.prof.as_mut() {
        p.exit(PH_SLO, t0);
    }
    if now + SimDuration::from_secs(1) <= w.end_at {
        sim.schedule(SimDuration::from_secs(1), sample_metrics);
    }
}

/// Crash one service instance: all in-memory state is lost (sift's
/// frame store, the sidecar queue, any in-flight execution) and the
/// port goes dark until the orchestrator's re-deploy completes — the
/// failure mode Oakestra's self-healing covers (§3.2: "automatically
/// re-deploying services upon failures").
fn crash_instance(w: &mut PipelineWorld, sim: &mut SimW, kind: ServiceKind, replica: usize) {
    let now = sim.now();
    let ki = kind.index();
    let Some(&slot) = w.replicas[ki].get(replica) else {
        return;
    };
    let revive_at = now + w.cfg.recovery;
    if w.cfg.resilience.detection.is_some() {
        // The detection-latency clock starts at the crash instant.
        w.crash_pending.insert(slot, now);
    }
    let mut lost: Vec<trace::TraceCtx> = Vec::new();
    {
        let svc = &mut w.services[slot];
        svc.down_until = Some(revive_at);
        svc.generation += 1;
        svc.busy = false;
        svc.state_store.clear();
        svc.fetch_queue.clear();
        // A frame parked awaiting its fetch dies with the instance (the
        // in-compute frame, if any, is voided by the generation bump and
        // attributed when its completion event fires).
        if let Some((msg, _, _)) = svc.pending_fetch.take() {
            lost.push(msg.trace);
        }
        if let Some(sc) = svc.sidecar.as_mut() {
            // The queue dies with the container; rebuild it empty.
            lost.extend(sc.drain().into_iter().map(|m| m.trace));
            *sc = Sidecar::new(sc.threshold(), sc.service_est(), sc.downstream_est());
        }
    }
    // Observatory: mark the crash instant for tail-sampling adjacency
    // (frames terminating inside the window after it are retained), put
    // the crash and each voided frame on the flight rings, then freeze
    // a dump of the recent history.
    w.tracer.note_crash(now.as_nanos());
    if let Some(fr) = &w.flight {
        fr.record(
            0,
            now.as_nanos(),
            observatory::flight::KIND_CRASH,
            slot as u64,
            lost.len() as u64,
        );
    }
    for ctx in lost {
        if let Some(fr) = &w.flight {
            fr.record(
                w.flight_ring(ctx.client),
                now.as_nanos(),
                observatory::flight::KIND_DROP,
                ctx.trace_id,
                slot as u64,
            );
        }
        w.tracer.terminal(
            ctx,
            now.as_nanos(),
            trace::FrameFate::Dropped(trace::DropReason::Crash),
        );
        if let Some(o) = w.obs.as_mut() {
            // Not mirrored into `scatter_drops_total` — the report's
            // per-service DropCounters don't count crash-voided frames
            // either, and the live counters must match them exactly.
            o.slo_breach(now.as_secs_f64());
        }
    }
    if let Some(fr) = &w.flight {
        fr.trigger(now.as_nanos(), "crash");
    }
    sim.schedule_at(revive_at, move |w, s| revive_instance(w, s, slot));
}

/// The orchestrator's restart completed: the instance's port is live
/// again. With the detection leg on, the revived instance rejoins the
/// routing set and the detector's watch list (its redeployed identity
/// registers fresh, so the outage gap never poisons the EWMA).
fn revive_instance(w: &mut PipelineWorld, sim: &mut SimW, slot: usize) {
    w.services[slot].down_until = None;
    // Recovered before anyone suspected it: cancel the latency clock.
    w.crash_pending.remove(&slot);
    if let Some(fr) = &w.flight {
        fr.record(
            0,
            sim.now().as_nanos(),
            observatory::flight::KIND_REVIVE,
            slot as u64,
            0,
        );
    }
    if !w.derouted[slot] {
        return;
    }
    w.derouted[slot] = false;
    let ki = w.services[slot].kind.index();
    // Invariant: the balancer serves max(routable.len(), 1) positions —
    // through `Err(LastReplica)` it keeps a single (binding-cleared)
    // replica while `routable` is empty. Grow it only when the revived
    // slot actually needs a new position.
    if w.balancers[ki].n_replicas() < w.routable[ki].len() + 1 {
        w.balancers[ki].add_replica();
    }
    w.routable[ki].push(slot);
    if let Some(det) = w.detector.as_mut() {
        det.register(w.instance_ids[slot], sim.now().as_millis_f64());
    }
}

/// One instance's heartbeat loop (detection leg only): beat while the
/// container is up, stay silent while it is down, always reschedule —
/// the loop itself survives crashes just like a real heartbeat thread
/// inside a restarted container would be respawned.
fn heartbeat(w: &mut PipelineWorld, sim: &mut SimW, slot: usize) {
    let now = sim.now();
    if now >= w.end_at {
        return;
    }
    let Some(det_cfg) = w.cfg.resilience.detection else {
        return;
    };
    if w.services[slot].down_until.is_none() {
        if let Some(det) = w.detector.as_mut() {
            det.heartbeat(w.instance_ids[slot], now.as_millis_f64());
        }
    }
    let jitter_ms = w
        .rng_hb
        .as_mut()
        .map_or(0.0, |r| r.uniform(0.0, det_cfg.hb_jitter.as_millis_f64()));
    sim.schedule(
        det_cfg.hb_interval + SimDuration::from_millis_f64(jitter_ms),
        move |w, s| heartbeat(w, s, slot),
    );
}

/// The detector's periodic sweep: newly suspected instances are failed
/// in the cluster, redeployed (§3.2's self-healing loop), and removed
/// from routing so sticky flows rebind to surviving replicas.
fn detector_check(w: &mut PipelineWorld, sim: &mut SimW) {
    let now = sim.now();
    let Some(det_cfg) = w.cfg.resilience.detection else {
        return;
    };
    let suspicions = w
        .detector
        .as_mut()
        .map(|d| d.check(now.as_millis_f64()))
        .unwrap_or_default();
    let mut detected = false;
    for sus in suspicions {
        let Some(slot) = w.instance_ids.iter().position(|&id| id == sus.instance) else {
            continue;
        };
        if w.derouted[slot] {
            continue;
        }
        w.resilience.detections += 1;
        detected = true;
        if let Some(fr) = &w.flight {
            fr.record(
                0,
                now.as_nanos(),
                observatory::flight::KIND_DETECT,
                slot as u64,
                0,
            );
        }
        if let Some(t0) = w.crash_pending.remove(&slot) {
            w.resilience
                .detection_latency_ms
                .push(now.saturating_since(t0).as_millis_f64());
        }
        // Failover: pull the instance out of the routing set. Sticky
        // bindings compact onto the survivors; the last replica's
        // removal is a counted outage, not a panic.
        let ki = w.services[slot].kind.index();
        if let Some(pos) = w.routable[ki].iter().position(|&s| s == slot) {
            match w.balancers[ki].remove_replica(pos) {
                Ok(()) => {
                    w.routable[ki].remove(pos);
                }
                Err(_last) => {
                    w.routable[ki].clear();
                }
            }
        }
        w.derouted[slot] = true;
        if let Some(fr) = &w.flight {
            fr.record(
                0,
                now.as_nanos(),
                observatory::flight::KIND_FAILOVER,
                ki as u64,
                slot as u64,
            );
        }
        // Orchestrator bookkeeping: fail the instance and let the
        // self-healing loop redeploy it on its machine. The redeployed
        // identity takes over the slot when the restart completes.
        let old_id = w.instance_ids[slot];
        w.cluster.fail_instance(old_id);
        let slas = w.slas.clone();
        let healed = w.cluster.redeploy_failed(&slas);
        w.resilience.redeploys += healed.len() as u64;
        if let Some((_, new_id)) = healed.iter().find(|(o, _)| *o == old_id) {
            w.instance_ids[slot] = *new_id;
        }
        if let Some(det) = w.detector.as_mut() {
            det.deregister(old_id);
        }
    }
    if detected {
        if let Some(fr) = &w.flight {
            fr.trigger(now.as_nanos(), "detect");
        }
    }
    if now + det_cfg.hb_interval <= w.end_at {
        sim.schedule(det_cfg.hb_interval, detector_check);
    }
}

/// The overload controller's tick (ladder leg only): sample the worst
/// live sidecar's projected wait and step the ladder with hysteresis.
fn ladder_tick(w: &mut PipelineWorld, sim: &mut SimW) {
    let now = sim.now();
    let Some(lcfg) = w.cfg.resilience.ladder else {
        return;
    };
    let backpressure = (0..w.services.len())
        .filter(|&s| w.services[s].down_until.is_none())
        .filter_map(|s| {
            w.services[s]
                .sidecar
                .as_ref()
                .map(|sc| sc.backpressure_ms())
        })
        .fold(0.0f64, f64::max);
    if let Some(l) = w.ladder.as_mut() {
        l.tick(backpressure);
    }
    if now + lcfg.tick <= w.end_at {
        sim.schedule(lcfg.tick, ladder_tick);
    }
}

/// Live-migrate a service instance to another machine: the container is
/// stopped (in-memory state lost, like a crash), its image is started on
/// the target after the orchestrator's `recovery` delay, and subsequent
/// traffic is routed to the new location. This realizes the "dynamic
/// migrations" the paper's introduction flags as unexplored for AR.
fn migrate_instance(
    w: &mut PipelineWorld,
    sim: &mut SimW,
    kind: ServiceKind,
    replica: usize,
    machine_name: &str,
) {
    let Some(target) = w.cluster.machine_index(machine_name) else {
        return;
    };
    let ki = kind.index();
    let Some(&slot) = w.replicas[ki].get(replica) else {
        return;
    };
    // Stop phase: identical semantics to a crash.
    crash_instance(w, sim, kind, replica);
    // Relocate: traffic after the restart flows to the new machine. The
    // instance gets a fresh trace track so post-migration spans group
    // under the right machine in the exported trace.
    w.services[slot].machine = target;
    w.track_of_slot[slot] = w.tracer.register_track(
        format!("{}#{replica}@{machine_name}", kind.name()),
        machine_name.to_string(),
    );
    if let Some(o) = w.obs.as_mut() {
        // Re-home the slot's series: post-migration records land on the
        // new machine's label set (the old series keeps its history).
        o.slots[slot] = o.register_slot(kind.name(), replica, machine_name);
    }
    let now = sim.now();
    w.scale_events.push(ScaleEvent {
        at: now,
        service: kind,
        machine: machine_name.to_string(),
        signal: -1.0, // marker: migration, not load-triggered scale-out
    });
}

/// Evaluate the autoscaling policy over the last window and scale out if
/// a service crosses its threshold (see [`crate::autoscale`]).
fn autoscale_check(w: &mut PipelineWorld, sim: &mut SimW) {
    let now = sim.now();
    let auto = w.cfg.autoscale.expect("autoscale_check without config");
    let window_start = SimTime::from_nanos(now.as_nanos().saturating_sub(auto.interval.as_nanos()));
    let window_ms = now.saturating_since(window_start).as_millis_f64();

    // Per-kind window signals: (busy fraction, drop ratio).
    let mut signals = [(0.0f64, 0.0f64); 5];
    let mut replica_counts = [0usize; 5];
    for i in 0..5 {
        let slots = &w.replicas[i];
        replica_counts[i] = slots.len();
        let (mut busy_ms, mut ingress, mut drops) = (0.0, 0usize, 0usize);
        for &slot in slots {
            let svc = &w.services[slot];
            busy_ms += svc
                .proc_series
                .iter()
                .filter(|&(t, _)| t >= window_start && t < now)
                .map(|(_, v)| v)
                .sum::<f64>();
            ingress += svc.ingress.window_count(window_start, now);
            drops += svc.drops_over_time.window_count(window_start, now);
        }
        let busy_frac = if window_ms > 0.0 {
            busy_ms / (window_ms * slots.len() as f64)
        } else {
            0.0
        };
        let drop_ratio = if ingress == 0 {
            0.0
        } else {
            drops as f64 / ingress as f64
        };
        signals[i] = (busy_frac.min(1.0), drop_ratio);
    }

    if let Some((kind_idx, signal)) =
        crate::autoscale::pick_target(auto.policy, &signals, &replica_counts, auto.max_replicas)
    {
        if let Some(machine_idx) = pick_scale_machine(w, auto.spread_over) {
            add_replica(w, sim, kind_idx, machine_idx, now, signal);
        }
    }

    if now + auto.interval <= w.end_at {
        sim.schedule(auto.interval, autoscale_check);
    }
}

/// Least-loaded eligible GPU machine by current instance count.
fn pick_scale_machine(w: &PipelineWorld, pool: MachinePool) -> Option<usize> {
    let eligible = |name: &str| match pool {
        MachinePool::Edge => name == "E1" || name == "E2",
        MachinePool::EdgeAndCloud => name == "E1" || name == "E2" || name == "cloud",
    };
    let mut counts: Vec<(usize, usize)> = w
        .cluster
        .machines()
        .iter()
        .enumerate()
        .filter(|(_, m)| eligible(&m.name) && m.has_gpu())
        .map(|(i, _)| (i, w.services.iter().filter(|s| s.machine == i).count()))
        .collect();
    counts.sort_by_key(|&(_, n)| n);
    counts.first().map(|&(i, _)| i)
}

/// Deploy one more replica of a service mid-run.
fn add_replica(
    w: &mut PipelineWorld,
    sim: &mut SimW,
    kind_idx: usize,
    machine_idx: usize,
    now: SimTime,
    signal: f64,
) {
    let kind = ServiceKind::from_index(kind_idx);
    let machine_name = w.cluster.machines()[machine_idx].name.clone();
    let sla = w.slas[kind_idx].clone();
    let Ok(new_id) = w.cluster.deploy_on(&sla, &machine_name) else {
        return; // out of capacity — skip this round
    };
    let replica = w.replicas[kind_idx].len();
    let sidecar = make_sidecar(w.cfg.mode, &w.cost, &w.cluster, machine_idx, kind_idx);
    let slot = w.services.len();
    w.services
        .push(SvcRuntime::new(kind, replica, machine_idx, sidecar));
    w.replicas[kind_idx].push(slot);
    w.balancers[kind_idx].add_replica();
    w.routable[kind_idx].push(slot);
    w.derouted.push(false);
    w.instance_ids.push(new_id);
    if let Some(det_cfg) = w.cfg.resilience.detection {
        if let Some(det) = w.detector.as_mut() {
            det.register(new_id, now.as_millis_f64());
        }
        sim.schedule(det_cfg.hb_interval, move |w, s| heartbeat(w, s, slot));
    }
    w.mem_series.push(TimeSeries::new());
    if let Some(o) = w.obs.as_mut() {
        let s = o.register_slot(kind.name(), replica, &machine_name);
        o.slots.push(s);
    }
    let track = w
        .tracer
        .register_track(format!("{}#{replica}", kind.name()), machine_name.clone());
    w.track_of_slot.push(track);
    w.scale_events.push(ScaleEvent {
        at: now,
        service: kind,
        machine: machine_name,
        signal,
    });
}

/// Propagate observed per-stage costs into every sidecar's downstream
/// estimate (the sidecar metrics exchange of §5 / appendix A.2): stage i
/// projects with Σ_{j>i} (observed cost of stage j + one hop).
fn refresh_estimates(w: &mut PipelineWorld, sim: &mut SimW) {
    let hop_ms = 1.0;
    // Mean observed cost per kind (fallback: cost-model base).
    let mut kind_ms = [0.0f64; 5];
    for (i, cost) in kind_ms.iter_mut().enumerate() {
        let slots = &w.replicas[i];
        let (mut sum, mut n) = (0.0, 0);
        for &slot in slots {
            if w.services[slot].ewma_service_ms > 0.0 {
                sum += w.services[slot].ewma_service_ms;
                n += 1;
            }
        }
        *cost = if n > 0 {
            sum / n as f64
        } else {
            w.cost.base_ms[i]
        };
    }
    for slot in 0..w.services.len() {
        let i = w.services[slot].kind.index();
        let downstream: f64 = kind_ms[i + 1..].iter().map(|c| c + hop_ms).sum::<f64>() + hop_ms;
        if let Some(sc) = w.services[slot].sidecar.as_mut() {
            sc.set_downstream_est(SimDuration::from_millis_f64(downstream));
        }
    }
    if sim.now() + SimDuration::from_millis(200) <= w.end_at {
        sim.schedule(SimDuration::from_millis(200), refresh_estimates);
    }
}

/// Periodic sift state eviction (the paper notes state is held "till
/// timeout", bounding — but not eliminating — the memory growth).
fn evict_sweep(w: &mut PipelineWorld, sim: &mut SimW) {
    let now = sim.now();
    let timeout = w.cost.state_timeout();
    for slot in w.replicas[ServiceKind::Sift.index()].clone() {
        w.services[slot].evict_stale_state(now, timeout);
    }
    if now + SimDuration::from_millis(250) <= w.end_at {
        sim.schedule(SimDuration::from_millis(250), evict_sweep);
    }
}

// ---------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------

fn build_report(mut w: PipelineWorld, events_executed: u64) -> RunReport {
    let measure_start = w.warmup_at;
    let measure_end = w.end_at;

    let mut resilience = std::mem::take(&mut w.resilience);
    if let Some(l) = &w.ladder {
        resilience.ladder_steps = l.steps;
        resilience.max_ladder_level = l.max_level_seen;
    }

    // Streaming runs keep no per-client vectors: the aggregates come
    // from the StreamQos counters and land in the ScaleReport instead.
    let streaming = w.streaming;
    let per_client_fps: Vec<f64> = if streaming {
        Vec::new()
    } else {
        w.clients
            .iter()
            .map(|c| c.rate.rate_over(measure_start, measure_end))
            .collect()
    };
    let per_client_fps_median: Vec<f64> = if streaming {
        Vec::new()
    } else {
        w.clients
            .iter()
            .map(|c| c.rate.median_per_second_rate(measure_start, measure_end))
            .collect()
    };

    let (mut em, mut cm) = (0u64, 0u64);
    let mut e2e = metrics::Summary::new();
    let mut jitter_sum = 0.0;
    for c in &w.clients {
        em += c.emitted_measured;
        cm += c.completed_measured;
        if streaming {
            jitter_sum += c.stream.jitter_ms();
        } else {
            e2e.merge(&c.e2e_ms);
            jitter_sum += c.jitter.jitter_ms();
        }
    }
    let success_rate = if em == 0 { 0.0 } else { cm as f64 / em as f64 };
    // Mean of per-client means in both modes — identical arithmetic.
    let jitter_ms = if w.clients.is_empty() {
        0.0
    } else {
        jitter_sum / w.clients.len() as f64
    };
    let max_freeze_frames = if streaming {
        w.clients.iter().map(|c| c.stream.max_freeze).max()
    } else {
        w.clients.iter().map(|c| c.longest_freeze()).max()
    }
    .unwrap_or(0);

    let scale = if streaming {
        let secs = measure_end.saturating_since(measure_start).as_secs_f64();
        let mut fps_per_client = LogHistogram::for_latency_ms();
        let mut completed_in_window = 0u64;
        for c in &w.clients {
            completed_in_window += c.stream.completed_in_window;
            if secs > 0.0 {
                // A log histogram has no zero bucket: idle clients are
                // invisible here but exact in `completed_in_window`.
                fps_per_client.record(c.stream.completed_in_window as f64 / secs);
            }
        }
        Some(crate::report::ScaleReport {
            sites: w.site_map.as_ref().map_or(1, |sm| sm.sites()),
            shards: w.shards,
            completed_in_window,
            fps_per_client,
            e2e_hist: w
                .scale_e2e
                .take()
                .unwrap_or_else(LogHistogram::for_latency_ms),
        })
    } else {
        None
    };

    let services: Vec<ServiceReport> = (0..w.services.len())
        .map(|slot| {
            let svc = &w.services[slot];
            let mem = &w.mem_series[slot];
            let peak = mem.iter().map(|(_, v)| v).fold(0.0f64, f64::max);
            // `None` (not 0.0) when there is no sidecar: a scAtteR run
            // has no filter to have a drop ratio.
            let sc_ratio = svc.sidecar.as_ref().map(|sc| sc.drop_ratio());
            let sc_queue_ms = svc
                .sidecar
                .as_ref()
                .map(|sc| sc.mean_queue_time().as_millis_f64());
            // Counters are carried in both modes: streaming runs kept
            // them live; exact runs derive them from the series here.
            let (ing_total, ing_win, drop_win) = match svc.streaming_window {
                Some(_) => (
                    svc.ingress_total,
                    svc.ingress_in_window,
                    svc.drop_events_in_window,
                ),
                None => (
                    svc.ingress.len() as u64,
                    svc.ingress.window_count(measure_start, measure_end) as u64,
                    svc.drops_over_time.window_count(measure_start, measure_end) as u64,
                ),
            };
            ServiceReport {
                kind: svc.kind,
                replica: svc.replica,
                machine: w.cluster.machines()[svc.machine].name.clone(),
                processed: svc.processed,
                drops: svc.drops,
                latency_ms: svc.service_latency_ms.clone(),
                ingress: svc.ingress.clone(),
                drops_over_time: svc.drops_over_time.clone(),
                ingress_total: ing_total,
                ingress_in_window: ing_win,
                drop_events_in_window: drop_win,
                mean_memory_gb: mem.mean(),
                peak_memory_gb: peak,
                sidecar_drop_ratio: sc_ratio,
                mean_queue_ms: sc_queue_ms,
                fetch_served: svc.fetch_served,
                fetch_dropped: svc.fetch_dropped,
            }
        })
        .collect();

    let machine_names: Vec<String> = w
        .cluster
        .machines()
        .iter()
        .map(|m| m.name.clone())
        .collect();
    let hw = w.cluster.hardware_snapshot(measure_end);
    let machines: Vec<MachineReport> = machine_names
        .iter()
        .enumerate()
        .map(|(mi, name)| {
            let (cpu, gpu, _) = hw[name];
            let mem = &w.machine_mem[mi];
            MachineReport {
                name: name.clone(),
                cpu_pct: cpu,
                gpu_pct: gpu,
                mean_memory_gb: mem.mean(),
                peak_memory_gb: mem.iter().map(|(_, v)| v).fold(0.0f64, f64::max),
            }
        })
        .collect();

    RunReport {
        mode: w.cfg.mode,
        clients: w.cfg.clients,
        measure_start,
        measure_end,
        per_client_fps,
        per_client_fps_median,
        success_rate,
        e2e_ms: e2e,
        jitter_ms,
        max_freeze_frames,
        services,
        machines,
        bytes_on_wire: w.net.total_bytes(),
        datagrams_lost: w.net.total_lost(),
        scale_events: w.scale_events,
        breakdown_compute: w.breakdown_compute,
        breakdown_queue: w.breakdown_queue,
        breakdown_network: w.breakdown_network,
        events_executed,
        resilience,
        wire: match &w.wire {
            Some(ws) => crate::report::WireReport {
                enabled: true,
                v2: ws.cfg.v2,
                uplink_bytes: ws.uplink_bytes,
                invalid_crc: ws.invalid_crc,
            },
            None => crate::report::WireReport::default(),
        },
        scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::placements;

    fn quick(mode: Mode, placement: orchestra::PlacementSpec, clients: usize) -> RunReport {
        let cfg = RunConfig::new(mode, placement, clients)
            .with_duration(SimDuration::from_secs(20))
            .with_warmup(SimDuration::from_secs(3));
        run_experiment(cfg)
    }

    fn wire_cfg(secs: u64, wire: crate::config::WireSimConfig) -> RunConfig {
        RunConfig::new(Mode::ScatterPP, placements::c1(), 1)
            .with_duration(SimDuration::from_secs(secs))
            .with_warmup(SimDuration::from_secs(1))
            .with_wire(wire)
    }

    #[test]
    fn wire_model_is_deterministic_and_v2_undercuts_v1() {
        let v2a = run_experiment(wire_cfg(4, crate::config::WireSimConfig::default()));
        let v2b = run_experiment(wire_cfg(4, crate::config::WireSimConfig::default()));
        assert_eq!(v2a.wire.uplink_bytes, v2b.wire.uplink_bytes);
        assert!(v2a.wire.enabled && v2a.wire.v2);
        assert!(v2a.wire.uplink_bytes > 0);
        let v1 = run_experiment(wire_cfg(4, crate::config::WireSimConfig::v1()));
        assert!(v1.wire.enabled && !v1.wire.v2);
        assert!(
            v2a.wire.uplink_bytes < v1.wire.uplink_bytes * 9 / 10,
            "v2 uplink {} should undercut v1 {} by well over 10%",
            v2a.wire.uplink_bytes,
            v1.wire.uplink_bytes
        );
        // The model must not hurt delivery: v2 still completes frames.
        assert!(v2a.fps() >= 24.0, "v2 wire model fps {:.1}", v2a.fps());
    }

    #[test]
    fn corrupt_first_is_caught_by_v2_and_swallowed_by_v1() {
        let n = 5u64;
        let v2 = run_experiment(wire_cfg(
            4,
            crate::config::WireSimConfig::default().with_corrupt_first(n),
        ));
        assert_eq!(
            v2.wire.invalid_crc, n,
            "every corrupted datagram must be caught, exactly once"
        );
        let v1 = run_experiment(wire_cfg(
            4,
            crate::config::WireSimConfig::v1().with_corrupt_first(n),
        ));
        assert_eq!(
            v1.wire.invalid_crc, 0,
            "v1 has no CRC: corruption passes silently"
        );
    }

    #[test]
    fn wire_off_run_report_carries_inert_wire_fields() {
        let r = quick(Mode::Scatter, placements::c1(), 1);
        assert!(!r.wire.enabled);
        assert_eq!(r.wire.uplink_bytes, 0);
        assert_eq!(r.wire.invalid_crc, 0);
    }

    #[test]
    fn single_client_edge_reaches_paper_fps() {
        let r = quick(Mode::Scatter, placements::c1(), 1);
        assert!(
            r.fps() >= 24.0,
            "single-client C1 FPS {:.1} below the paper's ≥25",
            r.fps()
        );
        let e2e = r.e2e_mean_ms();
        assert!(
            (30.0..=55.0).contains(&e2e),
            "E2E {e2e:.1} ms outside the ≈40 ms band"
        );
        assert!(r.success_rate > 0.75, "success {:.2}", r.success_rate);
    }

    #[test]
    fn scatter_degrades_with_clients() {
        let one = quick(Mode::Scatter, placements::c1(), 1);
        let four = quick(Mode::Scatter, placements::c1(), 4);
        assert!(
            four.fps() < one.fps() * 0.6,
            "scAtteR should degrade: 1 client {:.1} fps, 4 clients {:.1} fps",
            one.fps(),
            four.fps()
        );
    }

    #[test]
    fn scatterpp_beats_scatter_at_four_clients() {
        let base = quick(Mode::Scatter, placements::c1(), 4);
        let pp = quick(Mode::ScatterPP, placements::c1(), 4);
        assert!(
            pp.fps() >= base.fps() * 1.6,
            "scAtteR++ {:.1} fps not ≥1.6× scAtteR {:.1} fps",
            pp.fps(),
            base.fps()
        );
    }

    #[test]
    fn scatterpp_respects_latency_threshold() {
        // The sidecar filter is enforced at admission/dequeue: a frame
        // can still overshoot if a GPU hiccup strikes *while it is being
        // processed* (no mid-flight preemption in the real system
        // either). So the median must honour the budget and the p99 may
        // exceed it only by one worst-case hiccuped stage.
        let r = quick(Mode::ScatterPP, placements::c1(), 4);
        let mut e = r.e2e_ms.clone();
        assert!(
            e.median() <= 105.0,
            "median E2E {:.1} ms breaches the filter",
            e.median()
        );
        assert!(
            e.p99() <= 160.0,
            "p99 E2E {:.1} ms beyond hiccup slack",
            e.p99()
        );
    }

    #[test]
    fn cloud_slower_than_edge() {
        let edge = quick(Mode::Scatter, placements::c1(), 1);
        let cloud = quick(Mode::Scatter, placements::cloud_only(), 1);
        assert!(
            cloud.fps() < edge.fps(),
            "cloud {:.1} vs edge {:.1}",
            cloud.fps(),
            edge.fps()
        );
        assert!(
            cloud.e2e_mean_ms() > edge.e2e_mean_ms() + 10.0,
            "cloud E2E {:.1} should exceed edge {:.1} by ≈20 ms",
            cloud.e2e_mean_ms(),
            edge.e2e_mean_ms()
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick(Mode::Scatter, placements::c12(), 2);
        let b = quick(Mode::Scatter, placements::c12(), 2);
        assert_eq!(a.per_client_fps, b.per_client_fps);
        assert_eq!(a.bytes_on_wire, b.bytes_on_wire);
        assert_eq!(a.e2e_ms.samples(), b.e2e_ms.samples());
    }

    #[test]
    fn sift_memory_grows_under_scatter_load() {
        let r = quick(Mode::Scatter, placements::c1(), 4);
        let sift_mem = r.memory_gb(ServiceKind::Sift);
        let lsh_mem = r.memory_gb(ServiceKind::Lsh);
        assert!(
            sift_mem > lsh_mem * 2.0,
            "stateful sift memory {sift_mem:.2} GB should dominate lsh {lsh_mem:.2} GB"
        );
    }

    #[test]
    fn ablation_modes_sit_between_the_two_generations() {
        let base = quick(Mode::Scatter, placements::c2(), 4).fps();
        let stateless = quick(Mode::StatelessOnly, placements::c2(), 4).fps();
        let sidecar = quick(Mode::SidecarOnly, placements::c2(), 4).fps();
        let full = quick(Mode::ScatterPP, placements::c2(), 4).fps();
        // Statelessness alone helps (it breaks the dependency loop).
        assert!(
            stateless > base * 1.1,
            "stateless {stateless:.1} vs base {base:.1}"
        );
        // Queues alone do NOT: §4's point that backpressure mitigation
        // "may not be effective, as the bottleneck not only lies in the
        // processing complexity of the service but in the dependency
        // loop". The sidecar buffers frames that matching then times out
        // on anyway.
        assert!(
            (base * 0.75..=base * 1.25).contains(&sidecar),
            "sidecar-only {sidecar:.1} should sit near base {base:.1}"
        );
        // The full redesign needs both changes and beats each alone.
        assert!(
            full >= stateless * 0.85,
            "full {full:.1} vs stateless {stateless:.1}"
        );
        assert!(
            full > sidecar * 1.2,
            "full {full:.1} vs sidecar {sidecar:.1}"
        );
    }

    #[test]
    fn app_aware_autoscaler_scales_and_improves() {
        use crate::autoscale::AutoscaleConfig;
        let placement = orchestra::PlacementSpec::all_on(&crate::message::SERVICE_NAMES, "E2");
        let static_run = quick(Mode::ScatterPP, placement.clone(), 6);
        let cfg = RunConfig::new(Mode::ScatterPP, placement, 6)
            .with_duration(SimDuration::from_secs(20))
            .with_warmup(SimDuration::from_secs(3))
            .with_autoscale(AutoscaleConfig::application_aware(0.10));
        let scaled_run = run_experiment(cfg);
        assert!(
            !scaled_run.scale_events.is_empty(),
            "autoscaler never acted under heavy load"
        );
        assert!(
            scaled_run.fps() > static_run.fps(),
            "scaling should improve FPS: {:.1} vs static {:.1} (events: {:?})",
            scaled_run.fps(),
            static_run.fps(),
            scaled_run.scale_events.len()
        );
    }

    #[test]
    fn hardware_autoscaler_is_blind_under_scatter_drops() {
        use crate::autoscale::AutoscaleConfig;
        // Insight (I)/(IV): under scAtteR's drop regime utilization
        // stalls, so a utilization-threshold policy never fires even
        // though QoS has collapsed.
        let placement = placements::c2();
        let cfg = RunConfig::new(Mode::Scatter, placement.clone(), 4)
            .with_duration(SimDuration::from_secs(20))
            .with_warmup(SimDuration::from_secs(3))
            .with_autoscale(AutoscaleConfig::hardware(0.75));
        let hw = run_experiment(cfg);
        let cfg = RunConfig::new(Mode::Scatter, placement, 4)
            .with_duration(SimDuration::from_secs(20))
            .with_warmup(SimDuration::from_secs(3))
            .with_autoscale(AutoscaleConfig::application_aware(0.10));
        let app = run_experiment(cfg);
        assert!(
            hw.scale_events.len() < app.scale_events.len(),
            "hardware policy ({} actions) should lag app-aware ({} actions)",
            hw.scale_events.len(),
            app.scale_events.len()
        );
        assert!(
            app.fps() < 30.0,
            "sanity: the system is actually overloaded"
        );
    }

    #[test]
    fn crash_and_recovery_dent_then_restore_qos() {
        let base = quick(Mode::ScatterPP, placements::c2(), 2);
        let cfg = RunConfig::new(Mode::ScatterPP, placements::c2(), 2)
            .with_duration(SimDuration::from_secs(20))
            .with_warmup(SimDuration::from_secs(3))
            .with_failure(SimDuration::from_secs(8), ServiceKind::Sift, 0)
            .with_recovery(SimDuration::from_secs(2));
        let crashed = run_experiment(cfg);
        // The 2 s outage costs roughly 2 s × 60 frames = ~12% of the run.
        assert!(
            crashed.fps() < base.fps() * 0.97,
            "crash should dent FPS: {:.1} vs {:.1}",
            crashed.fps(),
            base.fps()
        );
        assert!(
            crashed.fps() > base.fps() * 0.6,
            "recovery should restore most QoS: {:.1} vs {:.1}",
            crashed.fps(),
            base.fps()
        );
        let sift = crashed
            .services
            .iter()
            .find(|s| s.kind == ServiceKind::Sift)
            .unwrap();
        assert!(sift.drops.down > 0, "downtime drops must be recorded");
    }

    #[test]
    fn crash_loses_stateful_sift_frames() {
        // In scAtteR a sift crash also strands matching's fetches for
        // frames whose state died with the container: the crashed run
        // must see at least as many fetch timeouts and a lower success
        // rate than the identical run without the crash.
        let run_with = |crash: bool| {
            let mut cfg = RunConfig::new(Mode::Scatter, placements::c2(), 2)
                .with_duration(SimDuration::from_secs(15))
                .with_warmup(SimDuration::from_secs(2));
            if crash {
                cfg = cfg.with_failure(SimDuration::from_secs(7), ServiceKind::Sift, 0);
            }
            run_experiment(cfg)
        };
        let clean = run_with(false);
        let crashed = run_with(true);
        let timeouts = |r: &RunReport| {
            r.services
                .iter()
                .filter(|s| s.kind == ServiceKind::Matching)
                .map(|s| s.drops.fetch_timeout)
                .sum::<u64>()
        };
        assert!(
            timeouts(&crashed) >= timeouts(&clean),
            "crash must not reduce fetch timeouts: {} vs {}",
            timeouts(&crashed),
            timeouts(&clean)
        );
        assert!(
            crashed.success_rate < clean.success_rate,
            "crash must cost frames: {:.2} vs {:.2}",
            crashed.success_rate,
            clean.success_rate
        );
    }

    #[test]
    fn detection_without_failures_is_report_neutral() {
        // Enabling the detection leg splits a 4th RNG stream off the
        // root *after* the three baseline streams and sends no bytes on
        // the wire, so a failure-free run must match the baseline QoS
        // numbers exactly — the plane observes until something fails.
        let base = quick(Mode::ScatterPP, placements::c1(), 2);
        let cfg = RunConfig::new(Mode::ScatterPP, placements::c1(), 2)
            .with_duration(SimDuration::from_secs(20))
            .with_warmup(SimDuration::from_secs(3))
            .with_resilience(
                crate::resilience::ResilienceConfig::default()
                    .with_detection(crate::resilience::DetectionConfig::default()),
            );
        let detected = run_experiment(cfg);
        assert_eq!(base.per_client_fps, detected.per_client_fps);
        assert_eq!(base.bytes_on_wire, detected.bytes_on_wire);
        assert_eq!(detected.resilience.detections, 0);
        assert_eq!(detected.resilience.post_detection_misroutes, 0);
    }

    #[test]
    fn detection_reroutes_and_redeploys_after_a_crash() {
        let run = |detect: bool| {
            let mut cfg = RunConfig::new(Mode::ScatterPP, placements::replicas([1, 2, 1, 1, 1]), 2)
                .with_duration(SimDuration::from_secs(20))
                .with_warmup(SimDuration::from_secs(3))
                .with_failure(SimDuration::from_secs(8), ServiceKind::Sift, 0)
                .with_recovery(SimDuration::from_secs(2));
            if detect {
                cfg = cfg.with_resilience(
                    crate::resilience::ResilienceConfig::default()
                        .with_detection(crate::resilience::DetectionConfig::default()),
                );
            }
            run_experiment(cfg)
        };
        let blind = run(false);
        let detected = run(true);
        assert_eq!(
            detected.resilience.detections, 1,
            "one crash, one suspicion"
        );
        assert_eq!(detected.resilience.redeploys, 1);
        assert_eq!(detected.resilience.post_detection_misroutes, 0);
        let lat = detected.resilience.mean_detection_latency_ms();
        assert!(
            (100.0..=400.0).contains(&lat),
            "detection latency {lat:.0} ms outside the 3×50 ms + sweep band"
        );
        // Failover: once detected, frames rebind to the surviving sift
        // replica instead of dying on the dark port.
        let down_drops = |r: &RunReport| {
            r.services
                .iter()
                .filter(|s| s.kind == ServiceKind::Sift)
                .map(|s| s.drops.down)
                .sum::<u64>()
        };
        assert!(
            down_drops(&detected) < down_drops(&blind),
            "failover should cut dead-port drops: {} vs blind {}",
            down_drops(&detected),
            down_drops(&blind)
        );
        assert!(
            detected.fps() > blind.fps(),
            "failover should help QoS: {:.1} vs blind {:.1}",
            detected.fps(),
            blind.fps()
        );
    }

    #[test]
    fn last_replica_crash_is_a_counted_outage_not_a_panic() {
        let cfg = RunConfig::new(Mode::ScatterPP, placements::c1(), 1)
            .with_duration(SimDuration::from_secs(15))
            .with_warmup(SimDuration::from_secs(2))
            .with_failure(SimDuration::from_secs(6), ServiceKind::Encoding, 0)
            .with_recovery(SimDuration::from_secs(2))
            .with_resilience(
                crate::resilience::ResilienceConfig::default()
                    .with_detection(crate::resilience::DetectionConfig::default()),
            );
        let r = run_experiment(cfg);
        assert_eq!(r.resilience.detections, 1);
        assert!(
            r.resilience.outage_drops > 0,
            "frames during the single-replica outage must be attributed"
        );
        assert_eq!(r.resilience.post_detection_misroutes, 0);
        assert!(r.success_rate > 0.5, "service must recover after revival");
    }

    #[test]
    fn deadlines_expire_and_retries_recover_during_an_outage() {
        let cfg = RunConfig::new(Mode::ScatterPP, placements::c1(), 2)
            .with_duration(SimDuration::from_secs(15))
            .with_warmup(SimDuration::from_secs(2))
            .with_failure(SimDuration::from_secs(6), ServiceKind::Lsh, 0)
            .with_recovery(SimDuration::from_secs(1))
            .with_resilience(
                crate::resilience::ResilienceConfig::default()
                    .with_deadline(crate::resilience::DeadlineConfig::default()),
            );
        let r = run_experiment(cfg);
        assert!(
            r.resilience.deadline_expired > 0,
            "outage frames must trip the client deadline"
        );
        assert!(r.resilience.retries > 0, "expiries must drive retries");
        assert!(
            r.resilience.retries <= r.resilience.deadline_expired,
            "at most one retry per expiry"
        );
    }

    #[test]
    fn ladder_engages_under_overload_and_stays_idle_when_light() {
        let resilience = crate::resilience::ResilienceConfig::default()
            .with_ladder(crate::resilience::LadderConfig::default());
        let light = RunConfig::new(Mode::ScatterPP, placements::c1(), 1)
            .with_duration(SimDuration::from_secs(15))
            .with_warmup(SimDuration::from_secs(2))
            .with_resilience(resilience.clone());
        let light = run_experiment(light);
        assert_eq!(
            light.resilience.max_ladder_level, 0,
            "one client must not trip the ladder"
        );
        let heavy = RunConfig::new(Mode::ScatterPP, placements::c1(), 8)
            .with_duration(SimDuration::from_secs(15))
            .with_warmup(SimDuration::from_secs(2))
            .with_resilience(resilience);
        let heavy = run_experiment(heavy);
        assert!(
            heavy.resilience.max_ladder_level >= 1,
            "eight clients must push someone down the ladder"
        );
        assert!(heavy.resilience.degraded_frames > 0);
        assert!(heavy.resilience.ladder_steps > 0);
    }

    #[test]
    fn resilient_runs_are_deterministic() {
        let run = || {
            let cfg = RunConfig::new(Mode::ScatterPP, placements::replicas([1, 2, 1, 1, 1]), 3)
                .with_duration(SimDuration::from_secs(15))
                .with_warmup(SimDuration::from_secs(2))
                .with_failure(SimDuration::from_secs(6), ServiceKind::Sift, 1)
                .with_recovery(SimDuration::from_secs(2))
                .with_resilience(
                    crate::resilience::ResilienceConfig::default()
                        .with_detection(crate::resilience::DetectionConfig::default())
                        .with_deadline(crate::resilience::DeadlineConfig::default())
                        .with_ladder(crate::resilience::LadderConfig::default()),
                );
            run_experiment(cfg)
        };
        let a = run();
        let b = run();
        assert_eq!(a.per_client_fps, b.per_client_fps);
        assert_eq!(a.bytes_on_wire, b.bytes_on_wire);
        assert_eq!(a.resilience.detections, b.resilience.detections);
        assert_eq!(
            a.resilience.detection_latency_ms,
            b.resilience.detection_latency_ms
        );
        assert_eq!(a.resilience.retries, b.resilience.retries);
        assert_eq!(a.resilience.ladder_steps, b.resilience.ladder_steps);
    }

    #[test]
    fn stateless_sift_holds_no_state() {
        let r = quick(Mode::ScatterPP, placements::c1(), 4);
        let sift = r
            .services
            .iter()
            .find(|s| s.kind == ServiceKind::Sift)
            .unwrap();
        assert_eq!(sift.fetch_served, 0);
        assert_eq!(sift.fetch_dropped, 0);
    }

    fn observed_cfg() -> RunConfig {
        RunConfig::new(Mode::ScatterPP, placements::c2(), 2)
            .with_duration(SimDuration::from_secs(15))
            .with_warmup(SimDuration::from_secs(2))
            .with_failure(SimDuration::from_secs(6), ServiceKind::Sift, 0)
            .with_recovery(SimDuration::from_secs(2))
            .with_observatory(observatory::ObservatoryConfig::default())
    }

    #[test]
    fn observatory_is_report_neutral() {
        // The whole observatory plane — tail sampler, flight recorder,
        // profiler (world + sim core) — is an observer: the report from
        // an observed run must match the unobserved run byte for byte.
        let mut plain = observed_cfg();
        plain.observatory = None;
        let base = run_experiment(plain);
        let (observed, _, art) = run_experiment_observed(observed_cfg());
        assert_eq!(base.per_client_fps, observed.per_client_fps);
        assert_eq!(base.bytes_on_wire, observed.bytes_on_wire);
        assert_eq!(base.success_rate, observed.success_rate);
        assert!(art.tail.is_some() && art.prof.is_some() && art.sim_prof.is_some());
    }

    #[test]
    fn observatory_retains_anomalies_and_dumps_on_crash() {
        let (report, log, art) = run_experiment_observed(observed_cfg());
        let stats = art.tail.expect("tail stats present");
        assert!(stats.frames_seen > 0);
        assert!(
            stats.dropped > 0,
            "the injected crash must surface dropped frames"
        );
        assert!(
            stats.frames_retained < stats.frames_seen,
            "healthy frames must be discarded: {} retained of {}",
            stats.frames_retained,
            stats.frames_seen
        );
        // Every retained frame's events are in the log; dropped frames
        // never lose their terminal.
        assert!(!log.events.is_empty());
        // The crash froze at least one flight dump whose merged history
        // contains the crash record itself.
        assert!(
            art.flight_dumps.iter().any(|d| d.reason == "crash"),
            "crash trigger missing: {:?}",
            art.flight_dumps
                .iter()
                .map(|d| d.reason.clone())
                .collect::<Vec<_>>()
        );
        let crash_dump = art
            .flight_dumps
            .iter()
            .find(|d| d.reason == "crash")
            .unwrap();
        assert!(crash_dump
            .events
            .iter()
            .any(|e| e.kind == observatory::flight::KIND_CRASH));
        assert!(report.success_rate > 0.0, "sanity: the run still served");
    }

    #[test]
    fn observed_runs_are_bit_identical_across_reruns_and_shards() {
        use std::fmt::Write as _;
        let fingerprint = |shards: usize| {
            let mut cfg = observed_cfg();
            cfg = cfg.with_scale(
                crate::config::ScaleConfig::new(3)
                    .exact()
                    .with_shards(shards),
            );
            let (_, log, art) = run_experiment_observed(cfg);
            let mut s = String::new();
            for ev in &log.events {
                writeln!(s, "{ev:?}").unwrap();
            }
            for d in &art.flight_dumps {
                s.push_str(&observatory::flight::dump_json(d));
            }
            let st = art.tail.unwrap();
            writeln!(s, "{st:?}").unwrap();
            s
        };
        let a = fingerprint(1);
        let b = fingerprint(1);
        assert_eq!(a, b, "rerun must be bit-identical");
        let c = fingerprint(3);
        assert_eq!(a, c, "shard count must not change retained bytes");
    }
}
