//! Experiment configuration: pipeline mode, placement, workload, network
//! conditions — one [`RunConfig`] fully determines one experiment run.

use orchestra::PlacementSpec;
use serde::{Deserialize, Serialize};
use simcore::SimDuration;
use simnet::NetemProfile;

use crate::message::SERVICE_NAMES;

/// Which pipeline generation to run.
///
/// scAtteR++ bundles two independent design changes — a stateless `sift`
/// and sidecar ingress queues. The two ablation modes apply each change
/// alone, letting experiments attribute the improvement (the paper
/// evaluates only the bundle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// The baseline: stateful `sift`, drop-on-busy services.
    Scatter,
    /// The redesign: stateless `sift`, sidecar queues with the 100 ms
    /// staleness filter.
    ScatterPP,
    /// Ablation: stateless `sift` (no fetch loop, 480 KB frames) but
    /// still drop-on-busy — no sidecar queues.
    StatelessOnly,
    /// Ablation: sidecar queues on every service, but `sift` stays
    /// stateful and `matching` still fetches.
    SidecarOnly,
}

impl Mode {
    /// Does `sift` embed its state in the forwarded frame?
    pub fn stateless_sift(self) -> bool {
        matches!(self, Mode::ScatterPP | Mode::StatelessOnly)
    }

    /// Do services front their ingress with a sidecar queue?
    pub fn sidecar_queue(self) -> bool {
        matches!(self, Mode::ScatterPP | Mode::SidecarOnly)
    }
}

/// Analytic wire-protocol model for the DES plane (see
/// [`crate::wirev2`]). When set, client uplink bytes stop being the
/// cost model's abstract payload and become the bytes the *real*
/// encoder pipeline would put on the wire: the scene generator + DCT
/// encoder + [`UplinkTx`](crate::wirev2::tx::UplinkTx) key/delta state
/// machine + store-if-smaller codec, framed as v1 or v2 datagrams.
/// The schedule is precomputed at world build
/// ([`crate::wirev2::predict`]), so the simulation draws no extra
/// randomness — and `None` leaves every byte of a run untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireSimConfig {
    /// Model v2 framing (delta + codec + envelope); `false` models the
    /// same client pixels under v1 framing — the baseline side of the
    /// cross-plane bytes gate.
    pub v2: bool,
    /// Client capture geometry and encoder quality, shared verbatim
    /// with the runtime clients.
    pub width: usize,
    pub height: usize,
    pub quality: u8,
    /// Uplink shaping knobs (ignored when `v2` is off).
    pub policy: crate::wirev2::tx::UplinkPolicy,
    /// Client-side encode cost of the v2 transforms (delta + codec),
    /// applied as a fixed delay between capture and uplink send. Zero
    /// for v1.
    pub codec_cost_ms: f64,
    /// Corrupt the first `n` uplink datagrams in flight — the DES twin
    /// of [`LinkImpairment::corrupt_first`](crate::runtime::impair::LinkImpairment):
    /// under v2 each one dies at ingress as a counted `InvalidCrc`
    /// drop; under v1 the damage is silently accepted and the frame
    /// sails on, which is exactly the contrast the wire experiment
    /// gates.
    pub corrupt_first: u64,
}

impl Default for WireSimConfig {
    fn default() -> Self {
        WireSimConfig {
            v2: true,
            width: 256,
            height: 144,
            quality: 85,
            policy: crate::wirev2::tx::UplinkPolicy::default(),
            codec_cost_ms: 0.2,
            corrupt_first: 0,
        }
    }
}

impl WireSimConfig {
    pub fn v1() -> Self {
        WireSimConfig {
            v2: false,
            codec_cost_ms: 0.0,
            ..Default::default()
        }
    }

    pub fn with_corrupt_first(mut self, n: u64) -> Self {
        self.corrupt_first = n;
        self
    }

    pub fn with_geometry(mut self, width: usize, height: usize, quality: u8) -> Self {
        self.width = width;
        self.height = height;
        self.quality = quality;
        self
    }
}

/// Scale-out shape of a run (see DESIGN.md §14). `None` on
/// [`RunConfig::scale`] — the default — runs the legacy paper-sized
/// world and is bit-identical to a pre-scale run. `Some` attaches
/// clients to access sites, optionally shards the event queue by site,
/// and optionally replaces the O(clients) exact per-client metric
/// collectors with O(sites + buckets) streaming aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Access-site nodes standing in for the single client host
    /// (clamped to ≥ 1). Clients attach round-robin; each site carries
    /// the client-host link set (Ethernet→E1, LAN→E2, Internet→cloud).
    pub sites: usize,
    /// Event-queue shards (clamped to ≥ 1; overridable via
    /// `SCATTER_SHARDS`). Sharding never changes results — see
    /// [`simcore::Sim::with_shards`] — only heap sizes.
    pub shards: usize,
    /// Streaming metrics: per-client QoS folds into histograms +
    /// counters instead of per-event vectors. Exact for counts and
    /// means; quantiles within one log-bucket width (≈2 %).
    pub streaming: bool,
}

impl ScaleConfig {
    pub fn new(sites: usize) -> Self {
        ScaleConfig {
            sites,
            shards: 1,
            streaming: true,
        }
    }

    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Keep the exact per-client collectors (small-n validation runs).
    pub fn exact(mut self) -> Self {
        self.streaming = false;
        self
    }
}

/// One experiment run, fully specified.
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub mode: Mode,
    /// Service placement (machine names per replica).
    pub placement: PlacementSpec,
    /// Number of concurrent clients (each replays the 30 FPS video).
    pub clients: usize,
    /// Experiment length (the paper runs five minutes; tests use less).
    pub duration: SimDuration,
    /// Measurement warmup discarded from aggregates.
    pub warmup: SimDuration,
    /// Optional netem condition on the client ↔ ingress link (fig. 9).
    pub netem: Option<NetemProfile>,
    /// Root RNG seed: equal seeds give bit-identical runs.
    pub seed: u64,
    /// Staggered client arrivals: when set, client `i` starts emitting at
    /// `i × stagger` (fig. 12's stepped load); otherwise all start at 0
    /// with small phase offsets.
    pub stagger: Option<SimDuration>,
    /// Mid-run autoscaling (the paper's future-work proposal; see
    /// [`crate::autoscale`]). `None` keeps the placement static.
    pub autoscale: Option<crate::autoscale::AutoscaleConfig>,
    /// Failure injection: `(crash time, service, replica)` — the
    /// instance loses all in-memory state (including sift's frame
    /// store and sidecar queue) and is re-deployed by the orchestrator
    /// after `recovery`.
    pub failures: Vec<(SimDuration, crate::message::ServiceKind, usize)>,
    /// Orchestrator detection + container-restart delay.
    pub recovery: SimDuration,
    /// Live migrations: `(time, service, replica, target machine)` — the
    /// instance is stopped, its image started on the target machine
    /// after `recovery`, and traffic follows (the "dynamic migrations"
    /// the paper's introduction calls largely unexplored).
    pub migrations: Vec<(SimDuration, crate::message::ServiceKind, usize, String)>,
    /// Per-frame causal tracing. `None` (the default) disables tracing
    /// entirely — the tracer short-circuits on an unsampled context, so
    /// the disabled path costs a branch per record site. `Some` enables
    /// span collection with the configured 1-in-N sampling.
    pub trace: Option<trace::TraceConfig>,
    /// The resilience control plane (failure detection + failover,
    /// client deadlines/retries, the degradation ladder). The default
    /// is fully inert and byte-identical to a pre-resilience run.
    pub resilience: crate::resilience::ResilienceConfig,
    /// Wire-protocol model for the client uplink. `None` (the default)
    /// keeps the cost model's abstract bytes and is bit-identical to a
    /// pre-wirev2 run.
    pub wire: Option<WireSimConfig>,
    /// Scale-out shape: access sites, queue shards, streaming metrics.
    /// `None` (the default) is the legacy paper-sized world.
    pub scale: Option<ScaleConfig>,
    /// The observatory plane: tail-sampled tracing, anomaly-triggered
    /// flight recorder, driver self-profiling. `None` (the default)
    /// changes nothing; when set, tail sampling supersedes `trace`'s
    /// head sampling (both planes record at the same sites).
    pub observatory: Option<observatory::ObservatoryConfig>,
}

impl RunConfig {
    pub fn new(mode: Mode, placement: PlacementSpec, clients: usize) -> Self {
        RunConfig {
            mode,
            placement,
            clients,
            duration: SimDuration::from_secs(60),
            warmup: SimDuration::from_secs(5),
            netem: None,
            seed: 7,
            stagger: None,
            autoscale: None,
            failures: Vec::new(),
            recovery: SimDuration::from_secs(2),
            migrations: Vec::new(),
            trace: None,
            resilience: crate::resilience::ResilienceConfig::default(),
            wire: None,
            scale: None,
            observatory: None,
        }
    }

    /// Enable the observatory plane (tail sampling + flight recorder +
    /// self-profiler) for this run.
    pub fn with_observatory(mut self, o: observatory::ObservatoryConfig) -> Self {
        self.observatory = Some(o);
        self
    }

    /// Run the scale-out world shape (sites / shards / streaming).
    pub fn with_scale(mut self, s: ScaleConfig) -> Self {
        self.scale = Some(s);
        self
    }

    /// Model the wire protocol (v1 or v2 per `w.v2`) on the uplink.
    pub fn with_wire(mut self, w: WireSimConfig) -> Self {
        self.wire = Some(w);
        self
    }

    /// Enable (parts of) the resilience control plane for this run.
    pub fn with_resilience(mut self, r: crate::resilience::ResilienceConfig) -> Self {
        self.resilience = r;
        self
    }

    /// Enable per-frame causal tracing for this run.
    pub fn with_trace(mut self, t: trace::TraceConfig) -> Self {
        self.trace = Some(t);
        self
    }

    pub fn with_duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    pub fn with_warmup(mut self, d: SimDuration) -> Self {
        self.warmup = d;
        self
    }

    pub fn with_netem(mut self, p: NetemProfile) -> Self {
        self.netem = Some(p);
        self
    }

    pub fn with_seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    pub fn with_stagger(mut self, d: SimDuration) -> Self {
        self.stagger = Some(d);
        self
    }

    pub fn with_autoscale(mut self, a: crate::autoscale::AutoscaleConfig) -> Self {
        self.autoscale = Some(a);
        self
    }

    /// Schedule a crash of `service`'s replica `replica` at `at`.
    pub fn with_failure(
        mut self,
        at: SimDuration,
        service: crate::message::ServiceKind,
        replica: usize,
    ) -> Self {
        self.failures.push((at, service, replica));
        self
    }

    pub fn with_recovery(mut self, d: SimDuration) -> Self {
        self.recovery = d;
        self
    }

    /// Schedule a live migration of `service`'s replica to `machine`.
    pub fn with_migration(
        mut self,
        at: SimDuration,
        service: crate::message::ServiceKind,
        replica: usize,
        machine: &str,
    ) -> Self {
        self.migrations.push((at, service, replica, machine.into()));
        self
    }
}

/// The paper's named placement configurations (§4), in the figures'
/// ordering `[primary, sift, encoding, lsh, matching]`.
pub mod placements {
    use super::*;

    /// C1: all services on E1.
    pub fn c1() -> PlacementSpec {
        PlacementSpec::all_on(&SERVICE_NAMES, "E1")
    }

    /// C2: all services on E2.
    pub fn c2() -> PlacementSpec {
        PlacementSpec::all_on(&SERVICE_NAMES, "E2")
    }

    /// C12 = [E1, E1, E2, E2, E2]: ingress + stateful `sift` on E1.
    pub fn c12() -> PlacementSpec {
        PlacementSpec::pipeline(&SERVICE_NAMES, &["E1", "E1", "E2", "E2", "E2"])
    }

    /// C21 = [E2, E2, E1, E1, E1].
    pub fn c21() -> PlacementSpec {
        PlacementSpec::pipeline(&SERVICE_NAMES, &["E2", "E2", "E1", "E1", "E1"])
    }

    /// Cloud-only: the full pipeline on the AWS VM (fig. 4).
    pub fn cloud_only() -> PlacementSpec {
        PlacementSpec::all_on(&SERVICE_NAMES, "cloud")
    }

    /// Hybrid [E1, C, C, C, C] (fig. 11): ingress at the edge, the rest
    /// in the cloud.
    pub fn hybrid_edge_cloud() -> PlacementSpec {
        PlacementSpec::pipeline(&SERVICE_NAMES, &["E1", "cloud", "cloud", "cloud", "cloud"])
    }

    /// Replica-count configuration over the baseline-on-E2 deployment:
    /// counts `[primary, sift, encoding, lsh, matching]` where the first
    /// replica lives on E2 and any additional replica on E1 ("QoS over E2
    /// with another replica on E1", fig. 3). A third replica (fig. 7's
    /// `[1,3,2,1,3]`) goes back on E2, using its second GPU.
    pub fn replicas(counts: [usize; 5]) -> PlacementSpec {
        let ring = ["E2", "E1", "E2"];
        let assignments: Vec<(String, Vec<String>)> = SERVICE_NAMES
            .iter()
            .zip(counts)
            .map(|(s, n)| {
                assert!(n >= 1 && n <= ring.len(), "unsupported replica count {n}");
                (s.to_string(), (0..n).map(|i| ring[i].to_string()).collect())
            })
            .collect();
        PlacementSpec { assignments }
    }
}

#[cfg(test)]
mod tests {
    use super::placements::*;
    use super::*;

    #[test]
    fn named_configs_match_paper_vectors() {
        assert_eq!(c12().replicas_of("sift").unwrap(), &["E1".to_string()]);
        assert_eq!(c12().replicas_of("lsh").unwrap(), &["E2".to_string()]);
        assert_eq!(c21().replicas_of("primary").unwrap(), &["E2".to_string()]);
        assert_eq!(c21().replicas_of("matching").unwrap(), &["E1".to_string()]);
        assert_eq!(cloud_only().total_instances(), 5);
        assert_eq!(
            hybrid_edge_cloud().replicas_of("primary").unwrap(),
            &["E1".to_string()]
        );
    }

    #[test]
    fn replica_vectors() {
        let p = replicas([2, 2, 1, 1, 1]);
        assert_eq!(p.replicas_of("primary").unwrap().len(), 2);
        assert_eq!(
            p.replicas_of("sift").unwrap(),
            &["E2".to_string(), "E1".to_string()]
        );
        assert_eq!(p.replicas_of("matching").unwrap(), &["E2".to_string()]);
        let p7 = replicas([1, 3, 2, 1, 3]);
        assert_eq!(p7.total_instances(), 10);
        assert_eq!(
            p7.replicas_of("sift").unwrap(),
            &["E2".to_string(), "E1".to_string(), "E2".to_string()]
        );
    }

    #[test]
    fn builder_chain() {
        let cfg = RunConfig::new(Mode::ScatterPP, c1(), 4)
            .with_duration(SimDuration::from_secs(10))
            .with_seed(99)
            .with_stagger(SimDuration::from_secs(1));
        assert_eq!(cfg.clients, 4);
        assert_eq!(cfg.seed, 99);
        assert!(cfg.stagger.is_some());
    }
}
