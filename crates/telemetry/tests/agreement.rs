//! Cross-crate agreement: the telemetry [`Histogram`] (log-linear,
//! µs fixed-point) must agree with an exact [`metrics::Summary`] fed the
//! same stream — count exactly, mean to within the per-sample rounding,
//! and nearest-rank quantiles to within one bucket width, the bound the
//! drift tables in `experiments --bin telemetry` lean on.

use proptest::prelude::*;
use telemetry::{HistSnapshot, Histogram};

/// Exact nearest-rank quantile (`ceil(q·n)`-th smallest) — the same rank
/// convention [`HistSnapshot::quantile`] uses, so any disagreement is
/// bucketing error, not a rank-convention mismatch.
fn exact_nearest_rank(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let k = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
    sorted[k - 1]
}

proptest! {
    /// Count is exact, the mean carries only the ±0.5 µs fixed-point
    /// rounding (no bucketing error — the sum is kept in integer units),
    /// and every quantile lands within one bucket width of the exact
    /// nearest-rank sample.
    #[test]
    fn histogram_agrees_with_exact_summary(
        xs in proptest::collection::vec(0.001f64..50_000.0, 1..300),
        q in 0.0f64..1.0,
    ) {
        let h = Histogram::detached_latency_ms();
        let mut s = metrics::Summary::new();
        for &x in &xs {
            h.record(x);
            s.record(x);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count() as usize, s.len());
        prop_assert!(
            (snap.mean() - s.mean()).abs() <= 0.0005 + 1e-9 * s.mean().abs(),
            "mean drift beyond quantization: hist {} vs exact {}",
            snap.mean(), s.mean()
        );

        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = exact_nearest_rank(&sorted, q);
        let approx = snap.quantile(q);
        // Half a bucket of midpoint error + half a µs of quantization,
        // each doubled for slack at bucket/segment boundaries.
        let tol = 2.0 * snap.bucket_width_at(exact.max(0.001)) + 0.002;
        prop_assert!(
            (approx - exact).abs() <= tol,
            "q={q}: hist {approx} vs exact {exact} (tol {tol})"
        );
    }

    /// `midpoint_samples` is a faithful bridge into the exact-summary
    /// world: a [`metrics::Summary`] built from the expansion reproduces
    /// the snapshot's count, its quantiles bitwise (the expansion *is*
    /// the per-bucket midpoint list the snapshot ranks over), and its
    /// mean to within the advertised relative error bound.
    #[test]
    fn midpoint_expansion_matches_snapshot(
        xs in proptest::collection::vec(0.001f64..50_000.0, 1..300),
        q in 0.0f64..1.0,
    ) {
        let h = Histogram::detached_latency_ms();
        for &x in &xs {
            h.record(x);
        }
        let snap = h.snapshot();
        let mids = snap.midpoint_samples();
        prop_assert_eq!(mids.len() as u64, snap.count());
        // Buckets are emitted in ascending index order, so the expansion
        // is already sorted — its nearest-rank quantile is exactly the
        // snapshot's.
        prop_assert!(mids.windows(2).all(|w| w[0] <= w[1]));
        let from_mids = exact_nearest_rank(&mids, q);
        prop_assert_eq!(from_mids.to_bits(), snap.quantile(q).to_bits());

        let mut s = metrics::Summary::new();
        for &m in &mids {
            s.record(m);
        }
        prop_assert_eq!(s.len() as u64, snap.count());
        let tol = 2.0 * HistSnapshot::relative_error_bound() * snap.mean() + 0.002;
        prop_assert!(
            (s.mean() - snap.mean()).abs() <= tol,
            "midpoint mean {} vs exact-sum mean {} (tol {tol})",
            s.mean(), snap.mean()
        );
    }
}
