//! Log-linear bucketed histogram with a wait-free record path.
//!
//! The HDR-histogram idea: divide the value range into power-of-two
//! "octaves" and each octave into `2^p` linear sub-buckets. The bucket
//! index of a value is then a pure bit computation (a `leading_zeros`
//! and two shifts — no search, no floating-point log), and the relative
//! width of every bucket is at most `2^-p`, so any quantile read from
//! bucket midpoints carries at most `2^-(p+1)` relative error from
//! bucketing.
//!
//! Values are recorded in fixed-point *units* (the constructors choose
//! microseconds for millisecond-scale latencies), the per-bucket counts
//! are relaxed atomics (`fetch_add` — wait-free on x86/aarch64), and the
//! exact sum is kept in integer units so the mean is not subject to
//! bucketing error at all. This is what lets the real UDP runtime record
//! on its service hot loops and still reconcile against the exact
//! post-hoc `metrics::Summary` aggregates at ≤1% relative error.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-bucket precision: `2^p` linear sub-buckets per octave.
/// `p = 8` bounds the relative bucket width by `2^-8 ≈ 0.39%`.
const GROUPING_BITS: u32 = 8;

/// Highest representable power: values at or above `2^MAX_POW` units go
/// to the overflow bin. With microsecond units this is ~36 minutes.
const MAX_POW: u32 = 31;

/// Total bucket count for the log-linear layout.
const N_BUCKETS: usize = ((MAX_POW - GROUPING_BITS + 1) as usize) << GROUPING_BITS;

/// Bucket index of a value in units. Wait-free: no branches besides the
/// linear-region test, no loops.
#[inline]
fn bucket_index(u: u64) -> usize {
    let p = GROUPING_BITS;
    if u < (1 << p) {
        return u as usize;
    }
    let h = 63 - u.leading_zeros(); // highest set bit, >= p
    (((h - p + 1) as u64 * (1 << p)) + ((u >> (h - p)) - (1 << p))) as usize
}

/// Inclusive-exclusive `[lower, upper)` bounds of bucket `idx`, in units.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    let p = GROUPING_BITS;
    let idx = idx as u64;
    if idx < (1 << p) {
        return (idx, idx + 1);
    }
    let octave = idx >> p; // >= 1
    let sub = idx & ((1 << p) - 1);
    let shift = octave - 1;
    let lower = ((1 << p) + sub) << shift;
    let width = 1u64 << shift;
    (lower, lower + width)
}

/// Shared core: one atomic per bucket plus exact count/sum.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// Units per recorded value of 1.0 (e.g. 1000 units/ms = µs units).
    units_per_value: f64,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Exact sum in units — the mean carries no bucketing error.
    sum_units: AtomicU64,
    overflow: AtomicU64,
}

impl HistogramCore {
    pub fn new_latency_ms() -> HistogramCore {
        HistogramCore {
            units_per_value: 1_000.0, // record ms, bucket in µs
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_units: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record(&self, value: f64) {
        if !value.is_finite() || value < 0.0 {
            return;
        }
        let u = (value * self.units_per_value).round() as u64;
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_units.fetch_add(u, Ordering::Relaxed);
        if u >= (1 << MAX_POW) {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        } else {
            self.buckets[bucket_index(u)].fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        HistSnapshot {
            units_per_value: self.units_per_value,
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_units: self.sum_units.load(Ordering::Relaxed),
            overflow: self.overflow.load(Ordering::Relaxed),
        }
    }
}

/// A histogram handle. Cloning shares the core; `record` is wait-free.
#[derive(Debug, Clone)]
pub struct Histogram(pub(crate) Arc<HistogramCore>);

impl Histogram {
    /// A free-standing histogram for millisecond-scale latencies
    /// (µs-unit buckets, overflow above ~36 minutes).
    pub fn detached_latency_ms() -> Histogram {
        Histogram(Arc::new(HistogramCore::new_latency_ms()))
    }

    #[inline]
    pub fn record(&self, value: f64) {
        self.0.record(value);
    }

    pub fn snapshot(&self) -> HistSnapshot {
        self.0.snapshot()
    }
}

/// An owned, sparse point-in-time view of a histogram: only non-empty
/// buckets are materialized. Mergeable and subtractable (windowing).
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    units_per_value: f64,
    /// `(bucket index, count)`, ascending by index.
    buckets: Vec<(u32, u64)>,
    count: u64,
    sum_units: u64,
    overflow: u64,
}

impl HistSnapshot {
    /// An empty snapshot with the millisecond-latency configuration.
    pub fn empty_latency_ms() -> HistSnapshot {
        HistSnapshot {
            units_per_value: 1_000.0,
            buckets: Vec::new(),
            count: 0,
            sum_units: 0,
            overflow: 0,
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of recorded values (fixed-point rounding only).
    pub fn sum(&self) -> f64 {
        self.sum_units as f64 / self.units_per_value
    }

    /// Exact mean (no bucketing error).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum() / self.count as f64
        }
    }

    /// Quantile by nearest rank over bucket midpoints; relative error is
    /// bounded by half the bucket width, `2^-9 ≈ 0.2%`. Overflow mass
    /// reports the overflow threshold.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= target {
                let (lo, hi) = bucket_bounds(idx as usize);
                return (lo + hi) as f64 / 2.0 / self.units_per_value;
            }
        }
        // Landed in overflow.
        (1u64 << MAX_POW) as f64 / self.units_per_value
    }

    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Fraction of recorded values strictly above `threshold` (up to one
    /// bucket width of attribution error at the boundary).
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let t_units = (threshold * self.units_per_value).round() as u64;
        let mut above = self.overflow;
        for &(idx, n) in &self.buckets {
            let (lo, _) = bucket_bounds(idx as usize);
            if lo >= t_units {
                above += n;
            }
        }
        above as f64 / self.count as f64
    }

    /// Merge another snapshot of identical configuration.
    pub fn merge(&mut self, other: &HistSnapshot) {
        assert_eq!(
            self.units_per_value, other.units_per_value,
            "config mismatch"
        );
        self.buckets = merge_sparse(&self.buckets, &other.buckets, u64::checked_add);
        self.count += other.count;
        self.sum_units += other.sum_units;
        self.overflow += other.overflow;
    }

    /// The window `later − earlier` for two snapshots of one histogram
    /// (counts are monotone, so per-bucket subtraction is exact).
    pub fn delta(earlier: &HistSnapshot, later: &HistSnapshot) -> HistSnapshot {
        assert_eq!(
            earlier.units_per_value, later.units_per_value,
            "config mismatch"
        );
        // later − earlier, saturating per bucket (robust to series resets).
        let negated: Vec<(u32, u64)> = earlier.buckets.clone();
        let buckets = merge_sparse(&later.buckets, &negated, |a, b| Some(a.saturating_sub(b)))
            .into_iter()
            .filter(|&(_, n)| n > 0)
            .collect();
        HistSnapshot {
            units_per_value: later.units_per_value,
            buckets,
            count: later.count.saturating_sub(earlier.count),
            sum_units: later.sum_units.saturating_sub(earlier.sum_units),
            overflow: later.overflow.saturating_sub(earlier.overflow),
        }
    }

    /// Cumulative `(upper bound, cumulative count)` pairs over non-empty
    /// buckets — the Prometheus `_bucket{le=…}` series (without `+Inf`).
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut seen = 0u64;
        self.buckets
            .iter()
            .map(|&(idx, n)| {
                seen += n;
                let (_, hi) = bucket_bounds(idx as usize);
                (hi as f64 / self.units_per_value, seen)
            })
            .collect()
    }

    /// Expand into per-sample bucket midpoints — the bridge to the exact
    /// [`metrics`]-style summaries for reconciliation tests. Intended
    /// for test-sized populations; the expansion is `count()` long.
    pub fn midpoint_samples(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.count as usize);
        for &(idx, n) in &self.buckets {
            let (lo, hi) = bucket_bounds(idx as usize);
            let mid = (lo + hi) as f64 / 2.0 / self.units_per_value;
            out.extend(std::iter::repeat_n(mid, n as usize));
        }
        out.extend(std::iter::repeat_n(
            (1u64 << MAX_POW) as f64 / self.units_per_value,
            self.overflow as usize,
        ));
        out
    }

    /// Maximum relative half-width of any bucket — the bucketing error
    /// bound for quantiles ([`HistSnapshot::quantile`] docs).
    pub fn relative_error_bound() -> f64 {
        1.0 / ((1u64 << (GROUPING_BITS + 1)) as f64)
    }

    /// Absolute width of the bucket containing `value`, in value units —
    /// "within one bucket width" for agreement tests.
    pub fn bucket_width_at(&self, value: f64) -> f64 {
        let u = (value * self.units_per_value).round() as u64;
        if u >= (1 << MAX_POW) {
            return f64::INFINITY;
        }
        let (lo, hi) = bucket_bounds(bucket_index(u));
        (hi - lo) as f64 / self.units_per_value
    }
}

/// Merge two sparse `(index, count)` lists with `op(a, b)`; indices
/// present in only one list combine with an implicit 0.
fn merge_sparse<F>(a: &[(u32, u64)], b: &[(u32, u64)], op: F) -> Vec<(u32, u64)>
where
    F: Fn(u64, u64) -> Option<u64>,
{
    let mut out = Vec::with_capacity(a.len().max(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let (idx, va, vb) = match (a.get(i), b.get(j)) {
            (Some(&(ia, na)), Some(&(ib, nb))) => {
                if ia < ib {
                    i += 1;
                    (ia, na, 0)
                } else if ib < ia {
                    j += 1;
                    (ib, 0, nb)
                } else {
                    i += 1;
                    j += 1;
                    (ia, na, nb)
                }
            }
            (Some(&(ia, na)), None) => {
                i += 1;
                (ia, na, 0)
            }
            (None, Some(&(ib, nb))) => {
                j += 1;
                (ib, 0, nb)
            }
            (None, None) => unreachable!(),
        };
        out.push((idx, op(va, vb).expect("bucket count overflow")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        let mut last = 0usize;
        // Dense low range plus samples across every octave, ascending.
        let mut samples: Vec<u64> = (0u64..5_000)
            .chain((0..60).map(|k| (1u64 << 12) + k * 77_777))
            .collect();
        samples.sort_unstable();
        for u in samples {
            let idx = bucket_index(u);
            assert!(idx >= last, "index went backwards at {u}");
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= u && u < hi, "u={u} outside bucket [{lo},{hi})");
            last = idx;
        }
    }

    #[test]
    fn bounds_tile_the_range() {
        for idx in 0..N_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(idx);
            let (lo2, _) = bucket_bounds(idx + 1);
            assert_eq!(hi, lo2, "gap between buckets {idx} and {}", idx + 1);
        }
        let (_, top) = bucket_bounds(N_BUCKETS - 1);
        assert_eq!(top, 1 << MAX_POW);
    }

    #[test]
    fn relative_width_is_bounded() {
        for idx in 256..N_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            let rel = (hi - lo) as f64 / lo as f64;
            assert!(rel <= 1.0 / 256.0 + 1e-12, "bucket {idx} rel width {rel}");
        }
    }

    #[test]
    fn mean_is_exact_and_quantile_tight() {
        let h = Histogram::detached_latency_ms();
        for i in 1..=1000 {
            h.record(i as f64 * 0.1); // 0.1 .. 100.0 ms
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert!((s.mean() - 50.05).abs() < 1e-3, "mean {}", s.mean());
        let p95 = s.p95();
        assert!((p95 - 95.0).abs() / 95.0 < 0.005, "p95 {p95}");
        let med = s.median();
        assert!((med - 50.0).abs() / 50.0 < 0.005, "median {med}");
    }

    #[test]
    fn rejects_garbage_counts_overflow() {
        let h = Histogram::detached_latency_ms();
        h.record(f64::NAN);
        h.record(-1.0);
        assert_eq!(h.snapshot().count(), 0);
        h.record(1e12); // way past the 36-minute cap
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert!(
            s.quantile(0.5) >= 2e6,
            "overflow quantile {}",
            s.quantile(0.5)
        );
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::detached_latency_ms();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..10_000 {
                        h.record((t * 10_000 + i) as f64 / 100.0);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 40_000);
    }

    #[test]
    fn delta_windows_counts() {
        let h = Histogram::detached_latency_ms();
        h.record(10.0);
        h.record(20.0);
        let early = h.snapshot();
        h.record(30.0);
        h.record(40.0);
        let late = h.snapshot();
        let win = HistSnapshot::delta(&early, &late);
        assert_eq!(win.count(), 2);
        assert!(
            (win.mean() - 35.0).abs() < 0.01,
            "window mean {}",
            win.mean()
        );
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::detached_latency_ms();
        let b = Histogram::detached_latency_ms();
        a.record(1.0);
        b.record(100.0);
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        assert_eq!(sa.count(), 2);
        assert!((sa.mean() - 50.5).abs() < 0.01);
    }

    #[test]
    fn fraction_above_threshold() {
        let h = Histogram::detached_latency_ms();
        for v in [50.0, 90.0, 110.0, 150.0] {
            h.record(v);
        }
        let f = h.snapshot().fraction_above(100.0);
        assert!((f - 0.5).abs() < 0.01, "fraction {f}");
    }

    #[test]
    fn cumulative_is_monotone() {
        let h = Histogram::detached_latency_ms();
        for i in 0..100 {
            h.record(i as f64);
        }
        let cum = h.snapshot().cumulative();
        assert!(!cum.is_empty());
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0, "le bounds must ascend");
            assert!(w[0].1 <= w[1].1, "cumulative counts must ascend");
        }
        assert_eq!(cum.last().unwrap().1, 100);
    }
}
