//! Prometheus text-format exposition (version 0.0.4) and a tiny parser.
//!
//! The encoder renders a [`Snapshot`] as the classic text format any
//! Prometheus server scrapes: `# HELP` / `# TYPE` once per family, then
//! one sample line per series. Histograms render only their *non-empty*
//! cumulative `_bucket{le=…}` lines plus the mandatory `+Inf` bucket,
//! `_sum`, and `_count` — a log-linear histogram has 6144 buckets and
//! emitting empty ones would swamp the page.
//!
//! The parser handles exactly what the encoder emits (and the general
//! shape of the format: comments, labels with escapes, float values).
//! It exists so the verify gate and round-trip tests can check the
//! exposition is well-formed without an external Prometheus.

use std::fmt::Write as _;

use crate::registry::MetricKind;
use crate::snapshot::{SeriesValue, Snapshot};

/// Render a snapshot in the Prometheus text exposition format.
pub fn encode(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for s in &snap.series {
        if last_name != Some(s.name) {
            let kind = match &s.value {
                SeriesValue::Counter(_) => "counter",
                SeriesValue::Gauge(_) => "gauge",
                SeriesValue::Histogram(_) => "histogram",
            };
            let help = s.help.replace('\\', "\\\\").replace('\n', "\\n");
            let _ = writeln!(out, "# HELP {} {}", s.name, help);
            let _ = writeln!(out, "# TYPE {} {}", s.name, kind);
            last_name = Some(s.name);
        }
        let labels = s.labels.to_string();
        match &s.value {
            SeriesValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {}", s.name, labels, v);
            }
            SeriesValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {}", s.name, labels, fmt_f64(*v));
            }
            SeriesValue::Histogram(h) => {
                for (le, cum) in h.cumulative() {
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        s.name,
                        with_le(&s.labels.pairs(), fmt_f64(le)),
                        cum
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    s.name,
                    with_le(&s.labels.pairs(), "+Inf".to_string()),
                    h.count()
                );
                let _ = writeln!(out, "{}_sum{} {}", s.name, labels, fmt_f64(h.sum()));
                let _ = writeln!(out, "{}_count{} {}", s.name, labels, h.count());
            }
        }
    }
    out
}

/// Format a float the way Prometheus expects (no trailing noise, `+Inf`
/// style handled by the caller).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render a label set with an extra `le` pair appended (histogram
/// bucket lines).
fn with_le(pairs: &[(&'static str, String)], le: String) -> String {
    let mut out = String::from("{");
    for (k, v) in pairs {
        let escaped = v
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n");
        let _ = write!(out, "{k}=\"{escaped}\",");
    }
    let _ = write!(out, "le=\"{le}\"}}");
    out
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    /// `(key, value)` pairs in source order.
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

/// A parsed exposition page: type declarations and samples.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// `(family name, declared kind)` in source order.
    pub types: Vec<(String, MetricKind)>,
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// The value of the first sample matching `name` and all `labels`
    /// pairs (sample may carry more labels than queried).
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .map(|s| s.value)
    }
}

/// Parse a Prometheus text-format page. Returns an error string with a
/// line number on malformed input.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut out = Exposition::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it
                .next()
                .ok_or_else(|| format!("line {}: TYPE missing name", lineno + 1))?;
            let kind = match it.next() {
                Some("counter") => MetricKind::Counter,
                Some("gauge") => MetricKind::Gauge,
                Some("histogram") => MetricKind::Histogram,
                other => {
                    return Err(format!("line {}: unknown TYPE {:?}", lineno + 1, other));
                }
            };
            out.types.push((name.to_string(), kind));
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        out.samples
            .push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_labels, value_str) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| "unterminated label set".to_string())?;
            (
                (&line[..brace], Some(&line[brace + 1..close])),
                line[close + 1..].trim(),
            )
        }
        None => {
            let mut it = line.splitn(2, char::is_whitespace);
            let name = it.next().unwrap();
            let rest = it.next().ok_or_else(|| "missing value".to_string())?;
            ((name, None), rest.trim())
        }
    };
    let (name, labels_src) = name_labels;
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("bad metric name {name:?}"));
    }
    let labels = match labels_src {
        None => Vec::new(),
        Some(src) => parse_labels(src)?,
    };
    // Timestamps (a trailing integer) are not emitted by our encoder;
    // take the first token as the value.
    let value_tok = value_str
        .split_whitespace()
        .next()
        .ok_or_else(|| "missing value".to_string())?;
    let value = match value_tok {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse::<f64>().map_err(|_| format!("bad value {v:?}"))?,
    };
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(src: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    loop {
        // Skip separators / trailing comma.
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err("empty label key".to_string());
        }
        match chars.next() {
            Some('"') => {}
            other => return Err(format!("expected opening quote, got {other:?}")),
        }
        let mut val = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => val.push('\\'),
                    Some('"') => val.push('"'),
                    Some('n') => val.push('\n'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some('"') => break,
                Some(c) => val.push(c),
                None => return Err("unterminated label value".to_string()),
            }
        }
        out.push((key, val));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Labels;
    use crate::registry::Registry;

    fn demo_registry() -> Registry {
        let r = Registry::new();
        r.counter(
            "frames_total",
            "Frames offered to the service",
            Labels::service("sift").with_replica(0),
        )
        .add(42);
        r.gauge(
            "queue_depth",
            "Sidecar queue depth",
            Labels::service("sift"),
        )
        .set(3.5);
        let h = r.histogram(
            "service_latency_ms",
            "Per-frame service latency",
            Labels::service("primary"),
        );
        for v in [5.0, 10.0, 20.0, 80.0] {
            h.record(v);
        }
        r
    }

    #[test]
    fn encode_emits_help_type_and_samples() {
        let text = encode(&demo_registry().snapshot());
        assert!(text.contains("# HELP frames_total Frames offered to the service"));
        assert!(text.contains("# TYPE frames_total counter"));
        assert!(text.contains("frames_total{service=\"sift\",replica=\"0\"} 42"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth{service=\"sift\"} 3.5"));
        assert!(text.contains("# TYPE service_latency_ms histogram"));
        assert!(text.contains("service_latency_ms_bucket{service=\"primary\",le=\"+Inf\"} 4"));
        assert!(text.contains("service_latency_ms_count{service=\"primary\"} 4"));
    }

    #[test]
    fn roundtrip_counter_gauge_histogram() {
        let snap = demo_registry().snapshot();
        let text = encode(&snap);
        let exp = parse(&text).expect("parse");
        assert_eq!(
            exp.value("frames_total", &[("service", "sift"), ("replica", "0")]),
            Some(42.0)
        );
        assert_eq!(exp.value("queue_depth", &[("service", "sift")]), Some(3.5));
        assert_eq!(
            exp.value("service_latency_ms_count", &[("service", "primary")]),
            Some(4.0)
        );
        // Sum is exact (µs fixed point): 115 ms.
        let sum = exp
            .value("service_latency_ms_sum", &[("service", "primary")])
            .unwrap();
        assert!((sum - 115.0).abs() < 0.01, "sum {sum}");
        // +Inf bucket equals the count.
        assert_eq!(
            exp.value(
                "service_latency_ms_bucket",
                &[("service", "primary"), ("le", "+Inf")]
            ),
            Some(4.0)
        );
        // Types declared once per family.
        assert_eq!(exp.types.len(), 3);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_text() {
        let snap = demo_registry().snapshot();
        let exp = parse(&encode(&snap)).unwrap();
        let mut les: Vec<(f64, f64)> = exp
            .samples
            .iter()
            .filter(|s| s.name == "service_latency_ms_bucket")
            .map(|s| {
                let le = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| {
                        if v == "+Inf" {
                            f64::INFINITY
                        } else {
                            v.parse().unwrap()
                        }
                    })
                    .unwrap();
                (le, s.value)
            })
            .collect();
        les.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in les.windows(2) {
            assert!(w[0].1 <= w[1].1, "cumulative counts must be monotone");
        }
        assert_eq!(les.last().unwrap().1, 4.0);
    }

    #[test]
    fn parser_rejects_malformed() {
        assert!(parse("no_value_here").is_err());
        assert!(parse("bad-name 1").is_err());
        assert!(parse("x{unterminated=\"v} 1").is_err());
        assert!(parse("# TYPE x summary").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_empty_lines() {
        let text = "\n# comment\nm{k=\"a\\\"b\\\\c\\nd\"} 7\n";
        let exp = parse(text).unwrap();
        assert_eq!(exp.samples.len(), 1);
        assert_eq!(exp.samples[0].labels[0].1, "a\"b\\c\nd");
        assert_eq!(exp.samples[0].value, 7.0);
    }
}
