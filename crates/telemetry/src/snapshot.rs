//! Point-in-time scrapes and windowed views.
//!
//! A [`Snapshot`] is what a scrape returns: every registered series with
//! its value at that instant. Two snapshots of the same registry bound a
//! *window*: [`Snapshot::delta`] subtracts counters and histogram
//! buckets (they are monotone) and keeps the later gauge value — the
//! standard rate/window semantics of a Prometheus range query, computed
//! locally.

use crate::hist::HistSnapshot;
use crate::label::Labels;

/// The value of one series at scrape time.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesValue {
    Counter(u64),
    Gauge(f64),
    Histogram(HistSnapshot),
}

/// One series: `(name, labels)` identity plus help text and value.
#[derive(Debug, Clone)]
pub struct Series {
    pub name: &'static str,
    pub help: &'static str,
    pub labels: Labels,
    pub value: SeriesValue,
}

/// A point-in-time scrape of a registry. Series are ordered by
/// `(name, labels)` — deterministic regardless of registration order.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub series: Vec<Series>,
}

impl Snapshot {
    /// Look up one series by name and labels.
    pub fn get(&self, name: &str, labels: &Labels) -> Option<&SeriesValue> {
        self.series
            .iter()
            .find(|s| s.name == name && &s.labels == labels)
            .map(|s| &s.value)
    }

    /// Counter value, or 0 if the series is absent / not a counter.
    pub fn counter(&self, name: &str, labels: &Labels) -> u64 {
        match self.get(name, labels) {
            Some(SeriesValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value, or `None` if absent / not a gauge.
    pub fn gauge(&self, name: &str, labels: &Labels) -> Option<f64> {
        match self.get(name, labels) {
            Some(SeriesValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram snapshot, or `None` if absent / not a histogram.
    pub fn histogram(&self, name: &str, labels: &Labels) -> Option<&HistSnapshot> {
        match self.get(name, labels) {
            Some(SeriesValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Sum of a counter family across all label sets matching `pred`.
    pub fn counter_sum(&self, name: &str, pred: impl Fn(&Labels) -> bool) -> u64 {
        self.series
            .iter()
            .filter(|s| s.name == name && pred(&s.labels))
            .map(|s| match &s.value {
                SeriesValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// Merge of a histogram family across all label sets matching `pred`.
    pub fn histogram_merged(
        &self,
        name: &str,
        pred: impl Fn(&Labels) -> bool,
    ) -> Option<HistSnapshot> {
        let mut acc: Option<HistSnapshot> = None;
        for s in &self.series {
            if s.name != name || !pred(&s.labels) {
                continue;
            }
            if let SeriesValue::Histogram(h) = &s.value {
                match &mut acc {
                    None => acc = Some(h.clone()),
                    Some(a) => a.merge(h),
                }
            }
        }
        acc
    }

    /// The window `later − earlier`: counters and histogram buckets
    /// subtract (saturating, robust to resets); gauges take the later
    /// value. Series present only in `later` pass through unchanged;
    /// series that disappeared are dropped.
    pub fn delta(earlier: &Snapshot, later: &Snapshot) -> Snapshot {
        let series = later
            .series
            .iter()
            .map(|s| {
                let value = match (&s.value, earlier.get(s.name, &s.labels)) {
                    (SeriesValue::Counter(b), Some(SeriesValue::Counter(a))) => {
                        SeriesValue::Counter(b.saturating_sub(*a))
                    }
                    (SeriesValue::Histogram(b), Some(SeriesValue::Histogram(a))) => {
                        SeriesValue::Histogram(HistSnapshot::delta(a, b))
                    }
                    // Gauges are point-in-time: keep the later value.
                    (v, _) => v.clone(),
                };
                Series { value, ..s.clone() }
            })
            .collect();
        Snapshot { series }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn delta_windows_counters_and_keeps_gauges() {
        let r = Registry::new();
        let c = r.counter("frames_total", "frames", Labels::service("sift"));
        let g = r.gauge("queue_depth", "depth", Labels::service("sift"));
        c.add(10);
        g.set(3.0);
        let early = r.snapshot();
        c.add(5);
        g.set(7.0);
        let late = r.snapshot();
        let win = Snapshot::delta(&early, &late);
        assert_eq!(win.counter("frames_total", &Labels::service("sift")), 5);
        assert_eq!(
            win.gauge("queue_depth", &Labels::service("sift")),
            Some(7.0)
        );
    }

    #[test]
    fn delta_windows_histograms() {
        let r = Registry::new();
        let h = r.histogram("lat_ms", "latency", Labels::service("primary"));
        h.record(10.0);
        let early = r.snapshot();
        h.record(30.0);
        let late = r.snapshot();
        let win = Snapshot::delta(&early, &late);
        let hs = win
            .histogram("lat_ms", &Labels::service("primary"))
            .unwrap();
        assert_eq!(hs.count(), 1);
        assert!((hs.mean() - 30.0).abs() < 0.05);
    }

    #[test]
    fn family_sums_and_merges() {
        let r = Registry::new();
        r.counter(
            "drops_total",
            "d",
            Labels::service("sift").with_reason("busy_ingress"),
        )
        .add(2);
        r.counter(
            "drops_total",
            "d",
            Labels::service("sift").with_reason("stale_sidecar"),
        )
        .add(3);
        r.counter(
            "drops_total",
            "d",
            Labels::service("lsh").with_reason("busy_ingress"),
        )
        .add(7);
        let snap = r.snapshot();
        assert_eq!(snap.counter_sum("drops_total", |_| true), 12);
        assert_eq!(
            snap.counter_sum("drops_total", |l| l.service == Some("sift")),
            5
        );

        let h1 = r.histogram("lat_ms", "l", Labels::service("sift"));
        let h2 = r.histogram("lat_ms", "l", Labels::service("lsh"));
        h1.record(10.0);
        h2.record(20.0);
        let snap = r.snapshot();
        let merged = snap.histogram_merged("lat_ms", |_| true).unwrap();
        assert_eq!(merged.count(), 2);
        assert!((merged.mean() - 15.0).abs() < 0.05);
    }

    #[test]
    fn absent_series_defaults() {
        let snap = Snapshot::default();
        assert_eq!(snap.counter("nope", &Labels::EMPTY), 0);
        assert_eq!(snap.gauge("nope", &Labels::EMPTY), None);
        assert!(snap.histogram("nope", &Labels::EMPTY).is_none());
    }
}
