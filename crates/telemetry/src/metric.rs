//! Counters and gauges with wait-free record paths.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Shards per counter. Eight 64-byte-padded cells keep concurrent
/// service threads off each other's cache lines; a read sums the shards.
pub(crate) const SHARDS: usize = 8;

/// A cache-line-padded atomic cell.
#[repr(align(64))]
#[derive(Debug, Default)]
pub(crate) struct PaddedU64(pub AtomicU64);

thread_local! {
    /// This thread's home shard, assigned round-robin on first use.
    static HOME_SHARD: Cell<usize> = {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        Cell::new(NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS)
    };
}

#[inline]
fn home_shard() -> usize {
    HOME_SHARD.with(|c| c.get())
}

/// Shared core of a counter: monotonically increasing, sharded.
#[derive(Debug, Default)]
pub(crate) struct CounterCore {
    shards: [PaddedU64; SHARDS],
}

impl CounterCore {
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[home_shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A monotonically increasing counter handle. Cloning shares the core;
/// `inc`/`add` are wait-free (one `fetch_add` on the thread's home
/// shard).
#[derive(Debug, Clone)]
pub struct Counter(pub(crate) Arc<CounterCore>);

impl Counter {
    /// A free-standing counter not attached to any registry (tests,
    /// default wiring).
    pub fn detached() -> Counter {
        Counter(Arc::new(CounterCore::default()))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.add(n);
    }

    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// Shared core of a gauge: last-write-wins `f64` stored as bits.
#[derive(Debug)]
pub(crate) struct GaugeCore {
    bits: AtomicU64,
}

impl Default for GaugeCore {
    fn default() -> GaugeCore {
        GaugeCore {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl GaugeCore {
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn add(&self, d: f64) {
        // CAS loop; contention on gauges is negligible (they are set by
        // one owner or sampled at low rate), so this converges fast.
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A point-in-time gauge handle (queue depth, resident memory, …).
/// `set` is wait-free; `add` is lock-free.
#[derive(Debug, Clone)]
pub struct Gauge(pub(crate) Arc<GaugeCore>);

impl Gauge {
    /// A free-standing gauge not attached to any registry.
    pub fn detached() -> Gauge {
        Gauge(Arc::new(GaugeCore::default()))
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    pub fn add(&self, d: f64) {
        self.0.add(d);
    }

    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = Counter::detached();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    fn counter_add_accumulates() {
        let c = Counter::detached();
        c.add(5);
        c.add(7);
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::detached();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.add(-1.0);
        assert_eq!(g.get(), 1.5);
    }

    #[test]
    fn gauge_concurrent_adds_conserve() {
        let g = Gauge::detached();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let g = g.clone();
                s.spawn(move || {
                    for _ in 0..1_000 {
                        g.add(1.0);
                    }
                });
            }
        });
        assert_eq!(g.get(), 4_000.0);
    }
}
