//! # telemetry — the live metrics plane
//!
//! The paper's contribution is a *characterization*: FPS, end-to-end
//! latency, per-service latency, jitter, and CPU/memory utilization
//! sampled continuously while clients scale. The sibling crates compute
//! those numbers *post hoc* ([`metrics`] summaries inside a finished
//! `RunReport`); this crate is the *live* counterpart a production
//! deployment would actually scrape:
//!
//! - [`Registry`]: a lock-free metrics registry. Handle acquisition
//!   (`counter`/`gauge`/`histogram`) takes a short registration lock
//!   once; the **record path is wait-free** — sharded atomic adds for
//!   [`Counter`], a single atomic store for [`Gauge`], and one indexed
//!   atomic increment for [`Histogram`].
//! - [`Histogram`]: HDR-style **log-linear** buckets — 2^p linear
//!   sub-buckets per power-of-two range, giving a fixed relative error
//!   of `2^-p` with a branch-free index computation (two shifts and a
//!   `leading_zeros`). Mergeable and snapshot-delta-able.
//! - [`Labels`]: typed label sets (`service`, `replica`, `machine`,
//!   `reason`, `plane`) so series identity is structural, not stringly.
//! - [`prom`]: Prometheus text-format exposition (plus a tiny parser
//!   used by round-trip tests and the verify gate).
//! - [`Snapshot`] / [`Snapshot::delta`]: point-in-time scrapes and the
//!   windowed view between two scrapes — counters and histogram buckets
//!   subtract, gauges take the later value.
//! - [`SloTracker`]: rolling p50/p95/p99 plus multi-window burn rate
//!   against a latency objective (the paper's 100 ms threshold),
//!   emitting structured [`SloEvent`]s on alert transitions.
//!
//! Both execution planes use it: the DES world records through it while
//! simulating (an observer — no RNG, no feedback into the simulation),
//! and the real UDP runtime's service threads record on their hot loops
//! (where the wait-free path matters). `experiments --bin telemetry`
//! reconciles the two planes' live histograms against the post-hoc
//! `RunReport` aggregates at ≤1% relative error.

pub mod hist;
pub mod label;
pub mod metric;
pub mod prom;
pub mod registry;
pub mod slo;
pub mod snapshot;

pub use hist::{HistSnapshot, Histogram};
pub use label::Labels;
pub use metric::{Counter, Gauge};
pub use registry::{MetricKind, Registry};
pub use slo::{SloConfig, SloEvent, SloEventKind, SloTracker};
pub use snapshot::{SeriesValue, Snapshot};
