//! The metrics registry: named, labeled series with get-or-create
//! handle acquisition.
//!
//! Registration (handle acquisition) takes a short `Mutex`; the
//! returned handles share `Arc`ed cores, so the *record* path never
//! touches the registry again — sharded atomic adds for counters, an
//! atomic store for gauges, one indexed atomic increment for
//! histograms. Service threads acquire their handles once at spawn and
//! then record wait-free for the lifetime of the run.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramCore};
use crate::label::Labels;
use crate::metric::{Counter, CounterCore, Gauge, GaugeCore};
use crate::snapshot::{Series, SeriesValue, Snapshot};

/// What kind of series a name refers to. A name is bound to one kind
/// at first registration; re-registering under a different kind
/// panics (it is a programming error, like a type mismatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

#[derive(Debug)]
enum Core {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Histogram(Arc<HistogramCore>),
}

impl Core {
    fn kind(&self) -> MetricKind {
        match self {
            Core::Counter(_) => MetricKind::Counter,
            Core::Gauge(_) => MetricKind::Gauge,
            Core::Histogram(_) => MetricKind::Histogram,
        }
    }
}

#[derive(Debug, Default)]
struct Family {
    help: &'static str,
    kind: Option<MetricKind>,
    /// BTreeMap gives deterministic iteration order for snapshots and
    /// exposition, independent of registration order.
    series: BTreeMap<Labels, Core>,
}

#[derive(Debug, Default)]
struct Inner {
    families: BTreeMap<&'static str, Family>,
}

/// A registry of named metric families. Cheap to clone (shared inner).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter `name{labels}`. The first caller for
    /// a name sets its help text and kind.
    pub fn counter(&self, name: &'static str, help: &'static str, labels: Labels) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        let fam = inner.families.entry(name).or_default();
        Self::bind(fam, name, help, MetricKind::Counter);
        let core = fam
            .series
            .entry(labels)
            .or_insert_with(|| Core::Counter(Arc::new(CounterCore::default())));
        match core {
            Core::Counter(c) => Counter(Arc::clone(c)),
            other => panic!(
                "metric {name:?} registered as {:?}, requested Counter",
                other.kind()
            ),
        }
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge(&self, name: &'static str, help: &'static str, labels: Labels) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        let fam = inner.families.entry(name).or_default();
        Self::bind(fam, name, help, MetricKind::Gauge);
        let core = fam
            .series
            .entry(labels)
            .or_insert_with(|| Core::Gauge(Arc::new(GaugeCore::default())));
        match core {
            Core::Gauge(g) => Gauge(Arc::clone(g)),
            other => panic!(
                "metric {name:?} registered as {:?}, requested Gauge",
                other.kind()
            ),
        }
    }

    /// Get or create the latency histogram `name{labels}` (values in
    /// milliseconds, recorded internally at microsecond resolution).
    pub fn histogram(&self, name: &'static str, help: &'static str, labels: Labels) -> Histogram {
        let mut inner = self.inner.lock().unwrap();
        let fam = inner.families.entry(name).or_default();
        Self::bind(fam, name, help, MetricKind::Histogram);
        let core = fam
            .series
            .entry(labels)
            .or_insert_with(|| Core::Histogram(Arc::new(HistogramCore::new_latency_ms())));
        match core {
            Core::Histogram(h) => Histogram(Arc::clone(h)),
            other => panic!(
                "metric {name:?} registered as {:?}, requested Histogram",
                other.kind()
            ),
        }
    }

    fn bind(fam: &mut Family, name: &str, help: &'static str, kind: MetricKind) {
        match fam.kind {
            None => {
                fam.kind = Some(kind);
                fam.help = help;
            }
            Some(k) if k == kind => {}
            Some(k) => panic!("metric {name:?} registered as {k:?}, requested {kind:?}"),
        }
    }

    /// Point-in-time scrape of every series. Values are read with
    /// relaxed atomics; a scrape concurrent with recording sees some
    /// consistent recent value per series (exactness across series is
    /// not needed — deltas between scrapes are what reports consume).
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        let mut series = Vec::new();
        for (name, fam) in &inner.families {
            for (labels, core) in &fam.series {
                let value = match core {
                    Core::Counter(c) => SeriesValue::Counter(c.get()),
                    Core::Gauge(g) => SeriesValue::Gauge(g.get()),
                    Core::Histogram(h) => SeriesValue::Histogram(h.snapshot()),
                };
                series.push(Series {
                    name,
                    help: fam.help,
                    labels: labels.clone(),
                    value,
                });
            }
        }
        Snapshot { series }
    }

    /// Number of registered series across all families.
    pub fn series_count(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.families.values().map(|f| f.series.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_shares_core() {
        let r = Registry::new();
        let a = r.counter("frames_total", "frames", Labels::service("sift"));
        let b = r.counter("frames_total", "frames", Labels::service("sift"));
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.series_count(), 1);
    }

    #[test]
    fn distinct_labels_are_distinct_series() {
        let r = Registry::new();
        let a = r.counter("frames_total", "frames", Labels::service("sift"));
        let b = r.counter("frames_total", "frames", Labels::service("lsh"));
        a.inc();
        assert_eq!(b.get(), 0);
        assert_eq!(r.series_count(), 2);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x_total", "x", Labels::EMPTY);
        let _ = r.gauge("x_total", "x", Labels::EMPTY);
    }

    #[test]
    fn snapshot_is_deterministic_and_sorted() {
        let r = Registry::new();
        // Register out of order; snapshot must sort by (name, labels).
        r.gauge("z_depth", "depth", Labels::service("sift"))
            .set(3.0);
        r.counter("a_total", "a", Labels::service("sift")).inc();
        r.counter("a_total", "a", Labels::service("lsh")).add(2);
        let snap = r.snapshot();
        let names: Vec<_> = snap
            .series
            .iter()
            .map(|s| (s.name, s.labels.to_string()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("a_total", "{service=\"lsh\"}".to_string()),
                ("a_total", "{service=\"sift\"}".to_string()),
                ("z_depth", "{service=\"sift\"}".to_string()),
            ]
        );
    }

    #[test]
    fn histogram_snapshot_roundtrip() {
        let r = Registry::new();
        let h = r.histogram("lat_ms", "latency", Labels::service("primary"));
        h.record(10.0);
        h.record(20.0);
        let snap = r.snapshot();
        let s = &snap.series[0];
        match &s.value {
            SeriesValue::Histogram(hs) => {
                assert_eq!(hs.count(), 2);
                assert!((hs.mean() - 15.0).abs() < 0.05);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
