//! SLO tracking: rolling latency quantiles and multi-window burn rate.
//!
//! The paper's serviceability bar is a 100 ms end-to-end budget — a
//! frame slower than that (or dropped outright) misses the objective.
//! [`SloTracker`] consumes the completion stream (`observe`) and the
//! drop stream (`observe_breach`) and maintains:
//!
//! - **rolling p50/p95/p99** over a short sliding window, for display;
//! - **multi-window burn rate** (the Google SRE alerting recipe): the
//!   error budget is `1 − target` (e.g. 5% of frames may breach); the
//!   burn rate over a window is `breach_fraction / budget`. An alert
//!   fires only when *both* a long window and a short window burn above
//!   threshold — the long window gives significance, the short window
//!   guarantees the problem is still happening — and clears when the
//!   short window recovers. This avoids both flapping on single slow
//!   frames and alerting hours after a transient.
//!
//! The tracker is an observer: single-owner, no interior mutability, no
//! RNG. The DES feeds it simulated time; the runtime feeds wall time.

use std::collections::VecDeque;

/// Objective + alerting policy.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Latency objective in milliseconds (the paper's budget: 100 ms).
    pub threshold_ms: f64,
    /// Fraction of frames that must meet the objective (e.g. 0.95).
    pub target: f64,
    /// Long alerting window, seconds (significance).
    pub long_window_s: f64,
    /// Short alerting window, seconds (recency).
    pub short_window_s: f64,
    /// Burn-rate multiple that trips the alert (1.0 = burning the budget
    /// exactly at the sustainable rate).
    pub burn_threshold: f64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            threshold_ms: 100.0,
            target: 0.95,
            long_window_s: 30.0,
            short_window_s: 5.0,
            burn_threshold: 2.0,
        }
    }
}

/// What happened at an alert transition.
#[derive(Debug, Clone, PartialEq)]
pub enum SloEventKind {
    /// Both windows burning above threshold; alert raised.
    BurnRateAlert { short_burn: f64, long_burn: f64 },
    /// Short window recovered; alert cleared.
    BurnRateClear { short_burn: f64, long_burn: f64 },
}

/// A structured alert transition, timestamped in tracker time.
#[derive(Debug, Clone, PartialEq)]
pub struct SloEvent {
    pub at_s: f64,
    pub kind: SloEventKind,
}

/// One observation: `(time, breached?)`; completions also carry latency.
#[derive(Debug, Clone, Copy)]
struct Obs {
    t_s: f64,
    latency_ms: f64,
    breach: bool,
}

/// Rolling quantiles + burn-rate state machine. Single-owner.
#[derive(Debug)]
pub struct SloTracker {
    cfg: SloConfig,
    /// Observations within the long window, oldest first.
    window: VecDeque<Obs>,
    alerting: bool,
    total: u64,
    total_breaches: u64,
}

impl SloTracker {
    pub fn new(cfg: SloConfig) -> SloTracker {
        assert!(cfg.threshold_ms > 0.0 && cfg.target > 0.0 && cfg.target < 1.0);
        assert!(cfg.short_window_s > 0.0 && cfg.long_window_s >= cfg.short_window_s);
        SloTracker {
            cfg,
            window: VecDeque::new(),
            alerting: false,
            total: 0,
            total_breaches: 0,
        }
    }

    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Record a completed frame with its end-to-end latency.
    pub fn observe(&mut self, t_s: f64, latency_ms: f64) {
        let breach = latency_ms > self.cfg.threshold_ms;
        self.push(Obs {
            t_s,
            latency_ms,
            breach,
        });
    }

    /// Record a frame that never completed (dropped): an objective
    /// breach with no latency sample.
    pub fn observe_breach(&mut self, t_s: f64) {
        self.push(Obs {
            t_s,
            latency_ms: f64::NAN,
            breach: true,
        });
    }

    fn push(&mut self, obs: Obs) {
        self.total += 1;
        if obs.breach {
            self.total_breaches += 1;
        }
        self.window.push_back(obs);
        self.evict(obs.t_s);
    }

    fn evict(&mut self, now_s: f64) {
        let horizon = now_s - self.cfg.long_window_s;
        while self.window.front().is_some_and(|o| o.t_s < horizon) {
            self.window.pop_front();
        }
    }

    /// Breach fraction over the trailing `window_s` seconds ending at
    /// `now_s`; `None` if no observations fall in the window.
    fn breach_fraction(&self, now_s: f64, window_s: f64) -> Option<f64> {
        let horizon = now_s - window_s;
        let (mut n, mut breaches) = (0u64, 0u64);
        for o in self.window.iter().rev() {
            if o.t_s < horizon {
                break;
            }
            n += 1;
            if o.breach {
                breaches += 1;
            }
        }
        (n > 0).then(|| breaches as f64 / n as f64)
    }

    /// Burn rate over a trailing window: breach fraction divided by the
    /// error budget (`1 − target`). 1.0 = exactly sustainable.
    pub fn burn_rate(&self, now_s: f64, window_s: f64) -> Option<f64> {
        let budget = 1.0 - self.cfg.target;
        self.breach_fraction(now_s, window_s).map(|f| f / budget)
    }

    /// Rolling quantile over completions in the long window (drops have
    /// no latency and are excluded). Sort-on-demand: evaluated at ~1 Hz
    /// over a bounded window, not on the record path.
    pub fn rolling_quantile(&self, q: f64) -> Option<f64> {
        let mut lat: Vec<f64> = self
            .window
            .iter()
            .filter(|o| o.latency_ms.is_finite())
            .map(|o| o.latency_ms)
            .collect();
        if lat.is_empty() {
            return None;
        }
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((q.clamp(0.0, 1.0) * lat.len() as f64).ceil() as usize).clamp(1, lat.len()) - 1;
        Some(lat[idx])
    }

    pub fn rolling_p50(&self) -> Option<f64> {
        self.rolling_quantile(0.50)
    }

    pub fn rolling_p95(&self) -> Option<f64> {
        self.rolling_quantile(0.95)
    }

    pub fn rolling_p99(&self) -> Option<f64> {
        self.rolling_quantile(0.99)
    }

    /// Lifetime breach fraction (all observations, not windowed).
    pub fn lifetime_breach_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.total_breaches as f64 / self.total as f64
        }
    }

    pub fn observations(&self) -> u64 {
        self.total
    }

    /// Evaluate the alert state machine at `now_s`. Returns an event on
    /// a transition (raise or clear), `None` while the state holds.
    pub fn evaluate(&mut self, now_s: f64) -> Option<SloEvent> {
        self.evict(now_s);
        let long = self.burn_rate(now_s, self.cfg.long_window_s);
        let short = self.burn_rate(now_s, self.cfg.short_window_s);
        let (long_burn, short_burn) = (long.unwrap_or(0.0), short.unwrap_or(0.0));
        let firing = long_burn >= self.cfg.burn_threshold && short_burn >= self.cfg.burn_threshold;
        if firing && !self.alerting {
            self.alerting = true;
            return Some(SloEvent {
                at_s: now_s,
                kind: SloEventKind::BurnRateAlert {
                    short_burn,
                    long_burn,
                },
            });
        }
        // Clear on short-window recovery: the problem has stopped, even
        // if the long window still remembers it.
        if self.alerting && short_burn < self.cfg.burn_threshold {
            self.alerting = false;
            return Some(SloEvent {
                at_s: now_s,
                kind: SloEventKind::BurnRateClear {
                    short_burn,
                    long_burn,
                },
            });
        }
        None
    }

    pub fn is_alerting(&self) -> bool {
        self.alerting
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SloConfig {
        SloConfig {
            threshold_ms: 100.0,
            target: 0.95,
            long_window_s: 30.0,
            short_window_s: 5.0,
            burn_threshold: 2.0,
        }
    }

    #[test]
    fn healthy_stream_never_alerts() {
        let mut t = SloTracker::new(cfg());
        for i in 0..600 {
            let now = i as f64 * 0.1;
            t.observe(now, 40.0 + (i % 10) as f64);
            assert!(t.evaluate(now).is_none());
        }
        assert!(!t.is_alerting());
        assert_eq!(t.lifetime_breach_fraction(), 0.0);
    }

    #[test]
    fn sustained_breaches_alert_then_clear() {
        let mut t = SloTracker::new(cfg());
        // 20 s healthy.
        for i in 0..200 {
            let now = i as f64 * 0.1;
            t.observe(now, 50.0);
            assert!(t.evaluate(now).is_none());
        }
        // 15 s of 50% breaches: burn = 0.5/0.05 = 10 ≫ 2.
        let mut raised_at = None;
        for i in 0..150 {
            let now = 20.0 + i as f64 * 0.1;
            t.observe(now, if i % 2 == 0 { 150.0 } else { 50.0 });
            if let Some(ev) = t.evaluate(now) {
                assert!(matches!(ev.kind, SloEventKind::BurnRateAlert { .. }));
                raised_at = Some(ev.at_s);
                break;
            }
        }
        let raised_at = raised_at.expect("alert should raise under sustained burn");
        assert!(t.is_alerting());
        // Recovery: healthy stream clears once the short window drains.
        let mut cleared = false;
        for i in 0..200 {
            let now = raised_at + 0.1 + i as f64 * 0.1;
            t.observe(now, 50.0);
            if let Some(ev) = t.evaluate(now) {
                assert!(matches!(ev.kind, SloEventKind::BurnRateClear { .. }));
                cleared = true;
                break;
            }
        }
        assert!(cleared, "alert should clear after recovery");
        assert!(!t.is_alerting());
    }

    #[test]
    fn single_slow_frame_does_not_alert() {
        let mut t = SloTracker::new(cfg());
        for i in 0..100 {
            let now = i as f64 * 0.1;
            t.observe(now, 50.0);
            t.evaluate(now);
        }
        t.observe(10.0, 500.0); // one outlier
        assert!(t.evaluate(10.0).is_none());
        assert!(!t.is_alerting());
    }

    #[test]
    fn drops_count_as_breaches() {
        let mut t = SloTracker::new(cfg());
        let mut alerted = false;
        for i in 0..100 {
            let now = i as f64 * 0.1;
            t.observe_breach(now); // everything dropped
            if t.evaluate(now).is_some() {
                alerted = true;
                break;
            }
        }
        assert!(alerted, "all-drops stream must alert");
        assert_eq!(t.lifetime_breach_fraction(), 1.0);
    }

    #[test]
    fn rolling_quantiles_track_the_window() {
        let mut t = SloTracker::new(cfg());
        for i in 1..=100 {
            t.observe(i as f64 * 0.01, i as f64); // 1..=100 ms within window
        }
        assert_eq!(t.rolling_p50(), Some(50.0));
        assert_eq!(t.rolling_p95(), Some(95.0));
        assert_eq!(t.rolling_p99(), Some(99.0));
        // Drops (NaN latency) are excluded from quantiles.
        t.observe_breach(1.01);
        assert_eq!(t.rolling_p50(), Some(50.0));
    }

    #[test]
    fn window_eviction_forgets_old_observations() {
        let mut t = SloTracker::new(cfg());
        t.observe(0.0, 500.0); // breach at t=0
        t.observe(100.0, 10.0); // far later; long window is 30 s
        assert_eq!(t.burn_rate(100.0, 30.0), Some(0.0));
        assert_eq!(t.rolling_p99(), Some(10.0));
    }
}
