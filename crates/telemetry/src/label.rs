//! Typed label sets.
//!
//! Prometheus identifies a series by `(name, label set)`. Free-form
//! string maps invite typos and unbounded cardinality; the workloads in
//! this workspace only ever label by the pipeline's structure, so the
//! label set is a typed struct with a deterministic rendering order.
//! `None` fields are omitted from the rendered form.

use std::fmt;

/// A typed label set. Ordered, hashable, and cheap to clone (the only
/// owned string is the machine name).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Labels {
    /// Pipeline service (`primary`/`sift`/…) or `client`.
    pub service: Option<&'static str>,
    /// Replica ordinal within the service.
    pub replica: Option<u32>,
    /// Hosting machine (`E1`, `E2`, `cloud`, `runtime-host`, …).
    pub machine: Option<String>,
    /// Drop reason (mirrors `trace::DropReason::as_str`).
    pub reason: Option<&'static str>,
    /// Execution plane: `des` (simulation) or `runtime` (real UDP).
    pub plane: Option<&'static str>,
}

impl Labels {
    pub const EMPTY: Labels = Labels {
        service: None,
        replica: None,
        machine: None,
        reason: None,
        plane: None,
    };

    pub fn service(service: &'static str) -> Labels {
        Labels {
            service: Some(service),
            ..Labels::EMPTY
        }
    }

    pub fn with_replica(mut self, replica: u32) -> Labels {
        self.replica = Some(replica);
        self
    }

    pub fn with_machine(mut self, machine: impl Into<String>) -> Labels {
        self.machine = Some(machine.into());
        self
    }

    pub fn with_reason(mut self, reason: &'static str) -> Labels {
        self.reason = Some(reason);
        self
    }

    pub fn with_plane(mut self, plane: &'static str) -> Labels {
        self.plane = Some(plane);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.service.is_none()
            && self.replica.is_none()
            && self.machine.is_none()
            && self.reason.is_none()
            && self.plane.is_none()
    }

    /// `(key, value)` pairs in rendering order.
    pub fn pairs(&self) -> Vec<(&'static str, String)> {
        let mut out = Vec::new();
        if let Some(s) = self.service {
            out.push(("service", s.to_string()));
        }
        if let Some(r) = self.replica {
            out.push(("replica", r.to_string()));
        }
        if let Some(m) = &self.machine {
            out.push(("machine", m.clone()));
        }
        if let Some(r) = self.reason {
            out.push(("reason", r.to_string()));
        }
        if let Some(p) = self.plane {
            out.push(("plane", p.to_string()));
        }
        out
    }
}

impl fmt::Display for Labels {
    /// Prometheus label syntax: `{service="sift",replica="0"}`; empty
    /// sets render as the empty string.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pairs = self.pairs();
        if pairs.is_empty() {
            return Ok(());
        }
        write!(f, "{{")?;
        for (i, (k, v)) in pairs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            // Label values escape backslash, quote, and newline.
            let escaped = v
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n");
            write!(f, "{k}=\"{escaped}\"")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_renders_nothing() {
        assert_eq!(Labels::EMPTY.to_string(), "");
        assert!(Labels::EMPTY.is_empty());
    }

    #[test]
    fn full_set_renders_in_order() {
        let l = Labels::service("sift")
            .with_replica(2)
            .with_machine("E1")
            .with_reason("busy_ingress")
            .with_plane("des");
        assert_eq!(
            l.to_string(),
            "{service=\"sift\",replica=\"2\",machine=\"E1\",reason=\"busy_ingress\",plane=\"des\"}"
        );
        assert!(!l.is_empty());
    }

    #[test]
    fn values_are_escaped() {
        let l = Labels::EMPTY.with_machine("a\"b\\c");
        assert_eq!(l.to_string(), "{machine=\"a\\\"b\\\\c\"}");
    }

    #[test]
    fn labels_are_hashable_identity() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(Labels::service("lsh"), 1);
        assert_eq!(m.get(&Labels::service("lsh")), Some(&1));
        assert_eq!(m.get(&Labels::service("sift")), None);
    }
}
