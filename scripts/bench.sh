#!/usr/bin/env bash
# Reproducible benchmark gate: builds the release profile and runs the
# fixed perfbench matrix (DES steady-state events/sec, fig2+fig6 and
# full-suite regeneration sequential vs parallel, sift-stage vision
# kernels) over fixed seeds, writing BENCH_2.json at the repo root.
#
# Usage:
#   scripts/bench.sh                # write BENCH_2/BENCH_7/BENCH_9.json
#   scripts/bench.sh out.json       # write the perf matrix elsewhere
#
# The scale stage (BENCH_7.json) measures the site-sharded client
# ladder from DESIGN.md §14 — events/sec and peak RSS at 1k/10k/100k
# clients; add `--full` by hand for the 1M point.
#
# The matrix is single-machine wall-clock: compare BENCH_*.json files
# from the *same* host only. See README "Performance".
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_2.json}"

echo "==> cargo build --release -p experiments"
cargo build --release -p experiments

echo "==> perfbench -> ${OUT}"
# Benchmarks ignore ambient tuning knobs so recorded numbers are
# comparable run to run.
env -u SCATTER_EXP_SECS -u SCATTER_JOBS -u SCATTER_RUN_CACHE \
    ./target/release/perfbench "${OUT}"

echo "==> perfbench --scale -> BENCH_7.json"
env -u SCATTER_EXP_SECS -u SCATTER_JOBS -u SCATTER_RUN_CACHE -u SCATTER_SHARDS \
    ./target/release/perfbench --scale BENCH_7.json

echo "==> udpbench -> BENCH_9.json"
# Loopback data-plane pps (single / sharded / batched) plus a fresh
# scale ladder so the cross-PR diff keeps a shared name set.
env -u SCATTER_EXP_SECS -u SCATTER_JOBS -u SCATTER_RUN_CACHE -u SCATTER_SHARDS \
    ./target/release/udpbench BENCH_9.json > /dev/null
