#!/usr/bin/env bash
# Cross-PR performance ratchet: compare the two newest committed
# BENCH_<n>.json (by numeric suffix) over their common bench names and
# fail on a >10 % events/sec regression or >20 % peak-RSS growth.
# Record a fresh file first (e.g. `perfbench --scale BENCH_9.json`) so
# the diff prices this checkout against the previous PR's numbers.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p experiments --bin perfbench
exec ./target/release/perfbench --diff "${1:-.}"
