#!/usr/bin/env bash
# Full local verification gate: formatting, lints, build, tests.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "verify: all green"
