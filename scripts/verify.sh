#!/usr/bin/env bash
# Full local verification gate: formatting, lints, build, tests, a
# telemetry smoke stage (the live metrics plane reconciles against the
# post-hoc report, the binary exits non-zero on drift), a chaos smoke
# stage (the DES and the real-UDP runtime must agree bit-exactly on
# crash-attributed drops under one seeded fault schedule), a resilience
# smoke stage (heartbeat detection, failover, and the degradation
# ladder hold their cross-plane gates), a wire smoke stage (both
# planes agree exactly on bytes-on-wire and CRC-drop counts, and v2
# beats v1 over the cellular profile), an observatory smoke stage
# (tail-sampling retention, bit-identical replay, cross-plane fault
# agreement, and the observability-overhead bound), and a perf smoke
# stage (parallel figure suite completes, parallelism is deterministic,
# DES throughput has not regressed below the floor in BENCH_2.json,
# and the newest committed BENCH_<n>.json has not regressed >10 %
# events/sec or >20 % peak RSS against the previous one).
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> perf smoke: parallel figure suite completes"
SCATTER_EXP_SECS=2 SCATTER_JOBS=2 ./target/release/all > /dev/null

echo "==> perf smoke: parallel-vs-sequential determinism"
cargo test -q -p experiments --test parallel_determinism

echo "==> telemetry smoke: live plane reconciles with the post-hoc report"
SCATTER_EXP_SECS=8 SCATTER_JOBS=2 ./target/release/telemetry --smoke --json > /dev/null

echo "==> chaos smoke: DES and runtime agree on crash-attributed drops"
./target/release/chaos --smoke --json > /dev/null

echo "==> resilience smoke: detection, failover, and the degradation ladder hold their gates"
./target/release/resilience --smoke --json > /dev/null

echo "==> wire smoke: planes agree on bytes-on-wire and CRC drops; v2 beats v1 over LTE"
./target/release/wire --smoke --json > /dev/null

echo "==> observatory smoke: retention, replay, overhead, and cross-plane fault gates"
./target/release/observatory --smoke --json > /dev/null

echo "==> data-plane smoke: batched loopback pps floor and 2x edge from BENCH_9.json"
./target/release/udpbench --smoke BENCH_9.json

echo "==> perf smoke: DES throughput floor from BENCH_2.json"
./target/release/perfbench --smoke BENCH_2.json

echo "==> scale smoke: 100k-client throughput floor and peak-RSS ceiling from BENCH_7.json"
./target/release/perfbench --smoke-scale BENCH_7.json

echo "==> bench diff: newest BENCH_<n>.json vs previous"
./target/release/perfbench --diff

echo "verify: all green"
