//! Offline stand-in for `crossbeam`: the `channel::unbounded` MPMC
//! channel the trace collector uses, plus `thread::scope` for the
//! parallel experiment runner. `Mutex<VecDeque>` + `Condvar` rather
//! than a lock-free queue — same semantics (send never blocks,
//! receivers observe disconnect once all senders drop), lower peak
//! throughput, which the per-frame tracing load nowhere near reaches.

pub mod thread {
    //! Scoped threads with crossbeam's calling convention.
    //!
    //! `scope(|s| ...)` returns a `Result` like crossbeam's (so callers
    //! write `.unwrap()` or propagate), delegating to `std::thread::scope`
    //! which already guarantees joining every spawned thread — a panic in
    //! a child propagates at join, so `Ok` is only returned when every
    //! thread ran to completion.

    /// Crossbeam-style scope over [`std::thread::scope`]. Spawn with
    /// `s.spawn(|| ...)` (no `|_|` argument, matching std).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(f))
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Error: all receivers dropped; gives the message back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error: channel empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Never blocks; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            let disconnected = inner.senders == 0;
            drop(inner);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Block until a message or full disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            match inner.queue.pop_front() {
                Some(v) => Ok(v),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Drain whatever is currently queued without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }

        /// Blocking iterator; ends when all senders are dropped.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.inner.lock().unwrap().receivers -= 1;
        }
    }

    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn mpmc_order_and_disconnect() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn cross_thread_collection() {
        let (tx, rx) = channel::unbounded::<u64>();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(t * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let got: Vec<_> = rx.iter().collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 400);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let sum = std::sync::atomic::AtomicU64::new(0);
        crate::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|| {
                    sum.fetch_add(
                        chunk.iter().sum::<u64>(),
                        std::sync::atomic::Ordering::Relaxed,
                    );
                });
            }
        })
        .unwrap();
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 10);
    }
}
