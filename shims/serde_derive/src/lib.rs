//! Offline stand-in for `serde_derive`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` — nothing
//! actually serializes through serde (the one `serde_json` consumer was
//! rewritten by hand). These derives therefore accept the syntax,
//! including inert `#[serde(...)]` attributes, and emit no code.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
