//! Offline stand-in for `proptest`: the subset the workspace consumes.
//!
//! Differences from the real crate, by design:
//! * case generation is a deterministic SplitMix64 stream seeded from
//!   the test's module path — failures reproduce run-to-run;
//! * no shrinking: the failing inputs are printed as-is;
//! * `Strategy` is a plain "generate a value" trait (object-safe, so
//!   `prop_oneof!` boxes its arms).

pub mod test_runner {
    use std::fmt;

    /// Why a property case failed; produced by the `prop_assert*!`
    /// macros and surfaced as a panic by the `proptest!` harness.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// SplitMix64 — tiny, fast, and plenty for test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic per-test stream: seeded by FNV-1a of the test's
        /// full path so every test sees an independent sequence.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Modulo bias is irrelevant at test-generation fidelity.
            self.next_u64() % bound
        }
    }
}

/// Harness knobs; only `cases` is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generate one value per case. Object-safe so strategies can be
    /// boxed (`prop_oneof!`).
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Every reference to a strategy is itself a strategy (lets the
    /// harness take strategies by value or reference).
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies — `prop_oneof!`'s
    /// backing type.
    pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    // Cap at u64 span — ranges here are far smaller.
                    let off = rng.below(span.min(u64::MAX as u128) as u64);
                    (self.start as i128 + off as i128) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.next_f64() as $t
                }
            }
        )+};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $i:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count bounds for collection strategies: `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `proptest::bool::ANY` — a fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The harness macro: expands each `fn name(arg in strategy, ...)` into
/// a `#[test]` that runs `cases` deterministic iterations, treating
/// `prop_assert*!` failures as reported-and-abort.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            cfg.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice over strategies producing a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::OneOf(arms)
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", left, right),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", left, right, format!($($fmt)+)),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left != right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        let (sa, sb): (Vec<_>, Vec<_>) = (
            (0..8).map(|_| a.next_u64()).collect(),
            (0..8).map(|_| b.next_u64()).collect(),
        );
        assert_eq!(sa, sb);
        assert_ne!(sa, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -2.0f64..2.0, n in 1usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_sizes_respect_bounds(
            xs in crate::collection::vec(0u32..10, 2..6),
            fixed in crate::collection::vec(crate::bool::ANY, 7),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert_eq!(fixed.len(), 7);
        }

        #[test]
        fn oneof_and_just_cover_arms(v in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&v));
        }
    }
}
