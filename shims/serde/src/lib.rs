//! Offline stand-in for `serde`: derive macros in the macro namespace,
//! marker traits in the type namespace, exactly like the real crate's
//! `derive` feature. See `shims/README.md` for why this exists.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait so `T: Serialize` bounds still compile. The no-op derive
/// does not implement it; nothing in the workspace requires the bound.
pub trait Serialize {}

/// Marker trait mirroring [`Serialize`].
pub trait Deserialize<'de> {}
