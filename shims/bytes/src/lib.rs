//! Offline stand-in for the `bytes` crate: the subset the workspace
//! uses. `Bytes` is an `Arc<[u8]>` window (cheap clones and zero-copy
//! `slice`), `BytesMut` a growable buffer, and `Buf`/`BufMut` the
//! big-endian cursor traits. See `shims/README.md`.

use std::fmt;
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable, immutable byte window over shared storage.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(s),
            start: 0,
            end: s.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-window sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len() > 32 {
            write!(f, "…({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer; `freeze` converts to [`Bytes`] without copying
/// more than once.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(n: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(n),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

/// Read cursor over a contiguous byte source; integer reads are
/// big-endian, matching the real crate. Reads past the end panic — use
/// `remaining()` guards (the wire layer wraps these in checked readers).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    fn get_f32(&mut self) -> f32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        f32::from_be_bytes(b)
    }

    /// Copy the next `len` bytes out as an owned [`Bytes`] and advance.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance {cnt} past end {}", self.len());
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor; integer writes are big-endian.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f32(&mut self, v: f32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u16(0xBEEF);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0123_4567_89AB_CDEF);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.len(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(&r[..], b"xyz");
    }

    #[test]
    fn slice_is_zero_copy_window() {
        let b = Bytes::copy_from_slice(b"hello world");
        let w = b.slice(6..);
        assert_eq!(&w[..], b"world");
        let h = b.slice(0..5);
        assert_eq!(&h[..], b"hello");
        assert_eq!(h.slice(1..3), Bytes::copy_from_slice(b"el"));
    }

    #[test]
    fn buf_for_slice_advances() {
        let mut s: &[u8] = &[0, 0, 0, 5, 9];
        assert_eq!(s.get_u32(), 5);
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.get_u8(), 9);
        assert!(!s.has_remaining());
    }
}
