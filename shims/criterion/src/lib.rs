//! Offline stand-in for `criterion`: same macro surface, simple
//! wall-clock measurement. Prints `name ... mean ns/iter` per bench.
//!
//! Iteration counts are deliberately small: `cargo test` executes
//! `harness = false` bench targets, so a full statistical run would blow
//! up the tier-1 test budget. `--test` mode (what cargo passes under
//! `cargo test`) runs each closure once as a smoke test.

use std::time::{Duration, Instant};

/// Top-level harness handle, created by `criterion_group!`.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
            sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let group = name.to_string();
        BenchmarkGroup {
            c: self,
            group,
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size;
        self.run_one(name, samples, f);
        self
    }

    fn run_one<F>(&mut self, name: &str, samples: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let iters = if self.test_mode {
            1
        } else {
            samples.max(1) as u64
        };
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
            done: 0,
        };
        f(&mut b);
        if b.done == 0 {
            println!("{name:<48} (no iterations)");
            return;
        }
        let ns = b.elapsed.as_nanos() as f64 / b.done as f64;
        if self.test_mode {
            println!("{name:<48} ok (smoke, {:.1} ms)", ns / 1e6);
        } else {
            println!("{name:<48} {:>12.0} ns/iter ({} iters)", ns, b.done);
        }
    }
}

/// Benchmark group: scoped names plus a per-group sample-size override.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    group: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.group, name);
        let samples = self.sample_size.unwrap_or(self.c.sample_size);
        self.c.run_one(&full, samples, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    done: u64,
}

impl Bencher {
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
        self.done += self.iters;
    }
}

/// Re-export so `criterion::black_box` callers work; benches here use
/// `std::hint::black_box` directly.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion {
            test_mode: false,
            sample_size: 4,
        };
        let mut calls = 0u64;
        c.bench_function("shim/self", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert_eq!(calls, 4); // bench_function honours the configured sample_size
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut grouped = 0u64;
        g.bench_function("x", |b| b.iter(|| grouped += 1));
        g.finish();
        assert_eq!(grouped, 3);
    }
}
